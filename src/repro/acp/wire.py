"""ACP wire format: versioned, schema-checked JSONL frames.

Every message between the control-plane daemon and a managed system (or
an :class:`~repro.acp.client.AcpClient`) is one *frame*: a single JSON
object on a single line.  The envelope is fixed —

``{"schema_version": 1, "session_id": "...", "seq": N, "type": "...",
"payload": {...}}``

— and the payload layout is typed per frame ``type``.  Three rules make
the format safe to evolve:

* **Versioned** — ``schema_version`` is checked on decode; a frame from
  an incompatible protocol generation is refused outright rather than
  half-understood.
* **Schema-checked** — each type's required payload fields are validated
  with the same helpers the controller checkpoints use
  (:func:`repro.experiments.serialize.require_str` & friends); there is
  exactly one schema layer in the codebase.
* **Forward-tolerant** — *unknown* fields, in the envelope or the
  payload, are preserved and ignored, so a newer peer can add fields
  without breaking an older one (re-encoding a decoded frame keeps
  them: tolerant readers must not be lossy rewriters).

Event frames (``heartbeat``/``sensor``/``plan``/``actuate``/
``policy-swapped``/``restored``/``lifecycle``) stream server→client;
request frames (``hello``/``attach``/``run``/``swap``/``checkpoint``/
``result``/``sessions``/``metrics``/``detach``) travel client→server and
each is answered by a non-event frame, which is how a client finds the
end of a response batch on a byte stream.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.serialize import (
    require_dict,
    require_int,
    require_list,
    require_number,
    require_str,
    validate_checkpoint,
)

#: Version of the frame envelope + payload schemas.  Bumped on any
#: incompatible change; decode refuses frames from another version.
WIRE_SCHEMA_VERSION = 1

# -- typed error codes --------------------------------------------------------
#
# An ``error`` frame may carry a machine-readable ``code`` next to its
# human-readable ``error`` message.  The code is what a client's retry
# layer keys on: some failures are a property of the *delivery* (a
# corrupted line, a torn write, a command still in flight) and resolve
# on re-send; others are a property of the *request* and never will.

#: The delivered line was not a parseable frame (malformed JSON, bad
#: schema, non-UTF-8 bytes) — the sender's copy may still be fine.
ERR_BAD_FRAME = "bad-frame"
#: A partial trailing JSONL line from a writer that died mid-write.
ERR_TORN_LINE = "torn-line"
#: The frame's seq is behind the session's window and its response is
#: no longer cached — the command was neither applied nor replayable.
ERR_STALE_SEQ = "stale-seq"
#: A frame with this seq is still being applied; retry for the cached
#: response once it lands.
ERR_IN_FLIGHT = "in-flight"
#: The session's lease expired and it was moved to ``ORPHANED``; attach
#: with ``resume=<session id>`` to recover it.
ERR_ORPHANED = "orphaned"
#: The server hit an unexpected internal error handling the frame.
ERR_INTERNAL = "internal"

#: Codes a client may safely retry: the failure was in delivery, not in
#: the request, and the dedup window guarantees at-most-once application
#: on re-send.
RETRYABLE_ERROR_CODES = frozenset(
    {ERR_BAD_FRAME, ERR_TORN_LINE, ERR_IN_FLIGHT}
)

#: Verdicts of :meth:`SeqWindow.admit`.
SEQ_NEW = "new"
SEQ_DUPLICATE = "duplicate"
SEQ_STALE = "stale"
SEQ_PENDING = "pending"
SEQ_MISMATCH = "mismatch"

#: Frame types that stream as events (server → client).  Everything
#: else terminates a request/response exchange.
EVENT_TYPES = frozenset(
    {
        "heartbeat",
        "sensor",
        "plan",
        "actuate",
        "policy-swapped",
        "restored",
        "lifecycle",
    }
)


@dataclass(frozen=True)
class Frame:
    """One wire message: a typed payload in the versioned envelope.

    ``extra`` holds unknown envelope fields a newer peer sent; they are
    carried through re-encoding so this build never strips information
    it merely does not understand.
    """

    type: str
    session_id: str
    seq: int
    payload: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = WIRE_SCHEMA_VERSION
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_event(self) -> bool:
        return self.type in EVENT_TYPES


def encode_frame(frame: Frame) -> str:
    """One frame → one JSON line (no trailing newline)."""
    data: Dict[str, Any] = dict(frame.extra)
    data.update(
        {
            "schema_version": frame.schema_version,
            "session_id": frame.session_id,
            "seq": frame.seq,
            "type": frame.type,
            "payload": frame.payload,
        }
    )
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def decode_frame(line: str) -> Frame:
    """One JSON line → a validated :class:`Frame`.

    Raises :class:`~repro.errors.ConfigurationError` on malformed JSON,
    a wrong ``schema_version``, a missing envelope field, or a payload
    that fails its type's schema.  Unknown envelope and payload fields
    are tolerated (and preserved).
    """
    try:
        data = json.loads(line)
    except (json.JSONDecodeError, TypeError) as exc:
        raise ConfigurationError(f"undecodable wire frame: {exc}") from None
    if not isinstance(data, dict):
        raise ConfigurationError("wire frame is not a JSON object")
    version = require_int(data, "schema_version", "wire frame")
    if version != WIRE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported wire schema_version {version} "
            f"(this build speaks {WIRE_SCHEMA_VERSION})"
        )
    frame_type = require_str(data, "type", "wire frame")
    session_id = data.get("session_id")
    if not isinstance(session_id, str):
        raise ConfigurationError("wire frame: 'session_id' must be a string")
    seq = require_int(data, "seq", "wire frame")
    if seq < 0:
        raise ConfigurationError("wire frame: 'seq' must be >= 0")
    payload = require_dict(data, "payload", "wire frame")
    validator = _PAYLOAD_VALIDATORS.get(frame_type)
    if validator is not None:
        validator(payload)
    extra = {
        key: value
        for key, value in data.items()
        if key not in ("schema_version", "session_id", "seq", "type", "payload")
    }
    return Frame(
        type=frame_type,
        session_id=session_id,
        seq=seq,
        payload=payload,
        schema_version=version,
        extra=extra,
    )


# -- typed payload schemas ----------------------------------------------------
#
# Each validator checks the *required* fields of its frame type; extra
# payload fields pass through untouched (forward compatibility).


def _validate_heartbeat(payload: Dict[str, Any]) -> None:
    require_str(payload, "app", "heartbeat frame")
    require_int(payload, "hb_index", "heartbeat frame")
    require_number(payload, "time_s", "heartbeat frame")


def _validate_sensor(payload: Dict[str, Any]) -> None:
    require_number(payload, "time_s", "sensor frame")
    watts = require_dict(payload, "watts", "sensor frame")
    for rail, value in watts.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"sensor frame: rail {rail!r} must carry a number"
            )


def _validate_state_quad(payload: Dict[str, Any], context: str) -> None:
    state = require_list(payload, "state", context)
    if len(state) != 4 or any(
        not isinstance(v, int) or isinstance(v, bool) for v in state
    ):
        raise ConfigurationError(
            f"{context}: 'state' must be [c_big, c_little, f_big, f_little]"
        )


def _validate_plan(payload: Dict[str, Any]) -> None:
    require_str(payload, "app", "plan frame")
    require_number(payload, "time_s", "plan frame")
    _validate_state_quad(payload, "plan frame")


def _validate_actuate(payload: Dict[str, Any]) -> None:
    require_str(payload, "app", "actuate frame")
    require_number(payload, "time_s", "actuate frame")
    require_int(payload, "big_cores", "actuate frame")
    require_int(payload, "little_cores", "actuate frame")
    require_int(payload, "f_big_mhz", "actuate frame")
    require_int(payload, "f_little_mhz", "actuate frame")


def _validate_checkpoint_frame(payload: Dict[str, Any]) -> None:
    # A checkpoint *request* is empty; the *response* carries the store.
    # Both directions share the type, so only response fields are
    # checked — when present (same convention as the result frame).
    if "store" not in payload and "time_s" not in payload:
        return
    store = require_dict(payload, "store", "checkpoint frame")
    require_number(payload, "time_s", "checkpoint frame")
    for controller_id, envelope in store.items():
        if not isinstance(envelope, dict):
            raise ConfigurationError(
                f"checkpoint frame: snapshot {controller_id!r} is not a dict"
            )
        # The embedded envelopes are full controller checkpoints: the
        # PR-3 schema validates them, not a second wire-side schema.
        validate_checkpoint(envelope)


def _validate_swap(payload: Dict[str, Any]) -> None:
    require_str(payload, "policy", "swap frame")


def _validate_policy_swapped(payload: Dict[str, Any]) -> None:
    require_str(payload, "policy", "policy-swapped frame")
    require_number(payload, "time_s", "policy-swapped frame")
    require_list(payload, "controllers", "policy-swapped frame")


def _validate_attach(payload: Dict[str, Any]) -> None:
    require_str(payload, "version", "attach frame")
    shapes = require_list(payload, "shapes", "attach frame")
    if not shapes:
        raise ConfigurationError("attach frame: 'shapes' must be non-empty")
    for shape in shapes:
        if not isinstance(shape, dict):
            raise ConfigurationError("attach frame: each shape must be a dict")
        require_str(shape, "benchmark", "attach frame shape")
    require_dict(payload, "config", "attach frame")


def _validate_result(payload: Dict[str, Any]) -> None:
    # A result *request* may be empty; a result *response* carries the
    # serialized outcome.  Both directions share the type, so only the
    # response fields are checked — when present.
    if "metrics" in payload:
        require_dict(payload, "metrics", "result frame")
        require_dict(payload, "trace", "result frame")
        require_number(payload, "max_rate", "result frame")
        require_list(payload, "target", "result frame")


def _validate_error(payload: Dict[str, Any]) -> None:
    require_str(payload, "error", "error frame")
    code = payload.get("code")
    if code is not None and not isinstance(code, str):
        raise ConfigurationError("error frame: 'code' must be a string")


_PAYLOAD_VALIDATORS: Dict[str, Callable[[Dict[str, Any]], None]] = {
    "heartbeat": _validate_heartbeat,
    "sensor": _validate_sensor,
    "plan": _validate_plan,
    "actuate": _validate_actuate,
    "checkpoint": _validate_checkpoint_frame,
    "swap": _validate_swap,
    "policy-swapped": _validate_policy_swapped,
    "attach": _validate_attach,
    "result": _validate_result,
    "error": _validate_error,
}


# -- typed constructors -------------------------------------------------------


def make_frame(
    frame_type: str,
    session_id: str,
    seq: int,
    payload: Optional[Dict[str, Any]] = None,
) -> Frame:
    """Build and self-validate a frame (round-trips through encode)."""
    frame = Frame(
        type=frame_type, session_id=session_id, seq=seq, payload=payload or {}
    )
    validator = _PAYLOAD_VALIDATORS.get(frame_type)
    if validator is not None:
        validator(frame.payload)
    return frame


def heartbeat_frame(
    session_id: str, seq: int, app: str, hb_index: int, time_s: float,
    rate: Optional[float] = None, tag: str = "",
) -> Frame:
    payload: Dict[str, Any] = {
        "app": app, "hb_index": hb_index, "time_s": time_s,
    }
    if rate is not None:
        payload["rate"] = rate
    if tag:
        payload["tag"] = tag
    return make_frame("heartbeat", session_id, seq, payload)


def sensor_frame(
    session_id: str, seq: int, time_s: float, watts: Dict[str, float]
) -> Frame:
    return make_frame(
        "sensor", session_id, seq, {"time_s": time_s, "watts": dict(watts)}
    )


def plan_frame(
    session_id: str, seq: int, app: str, time_s: float, state: List[int]
) -> Frame:
    return make_frame(
        "plan", session_id, seq,
        {"app": app, "time_s": time_s, "state": list(state)},
    )


def actuate_frame(
    session_id: str, seq: int, app: str, time_s: float,
    big_cores: int, little_cores: int, f_big_mhz: int, f_little_mhz: int,
) -> Frame:
    return make_frame(
        "actuate", session_id, seq,
        {
            "app": app,
            "time_s": time_s,
            "big_cores": big_cores,
            "little_cores": little_cores,
            "f_big_mhz": f_big_mhz,
            "f_little_mhz": f_little_mhz,
        },
    )


def checkpoint_frame(
    session_id: str, seq: int, time_s: float, store: Dict[str, Dict[str, Any]]
) -> Frame:
    return make_frame(
        "checkpoint", session_id, seq, {"time_s": time_s, "store": store}
    )


def swap_frame(
    session_id: str, seq: int, policy: str,
    adapt_every: Optional[int] = None,
) -> Frame:
    payload: Dict[str, Any] = {"policy": policy}
    if adapt_every is not None:
        payload["adapt_every"] = adapt_every
    return make_frame("swap", session_id, seq, payload)


def error_frame(
    session_id: str, seq: int, error: str, detail: str = "", code: str = ""
) -> Frame:
    payload: Dict[str, Any] = {"error": error}
    if detail:
        payload["detail"] = detail
    if code:
        payload["code"] = code
    return make_frame("error", session_id, seq, payload)


# -- seq monotonicity + replay dedup ------------------------------------------


class SeqWindow:
    """Per-session seq validation and ``(seq → response)`` replay cache.

    The wire envelope already requires a non-negative integer ``seq``;
    this is the *stateful* half of that contract, one instance per live
    session.  It turns the client's monotonically increasing seq into
    exactly-once application over an at-least-once transport:

    * a **new** seq (greater than every seq seen so far) is admitted and
      marked in flight until its response is recorded;
    * a **duplicate** seq (response already cached) yields the cached
      response — a retried ``swap`` frame replays the first answer and
      is never applied a second time;
    * a **stale** seq (at or behind the window with no cached response —
      evicted, or never admitted) is refused with a typed verdict the
      server converts into an :data:`ERR_STALE_SEQ` error frame;
    * a **pending** seq (same frame delivered again while the first
      copy is still being applied) is refused retryably
      (:data:`ERR_IN_FLIGHT`) instead of racing a second application;
    * a cached seq re-sent with a *different* frame type is a
      :data:`SEQ_MISMATCH` — two writers collided on the same seq, and
      replaying the other request's response would be worse than
      refusing.

    The cache keeps the most recent ``cache_limit`` responses (error
    responses included — refusals are deterministic, so replaying them
    is consistent) and is safe to call from concurrent transport
    threads.
    """

    def __init__(self, cache_limit: int = 32):
        if cache_limit < 1:
            raise ConfigurationError("SeqWindow cache_limit must be >= 1")
        self.cache_limit = cache_limit
        self.last_seq = 0
        self._pending: set = set()
        self._cache: "OrderedDict[int, Tuple[str, Tuple[Frame, ...]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def admit(
        self, seq: int, frame_type: str
    ) -> Tuple[str, Optional[List[Frame]]]:
        """Classify an incoming seq; returns ``(verdict, cached)``.

        ``cached`` is the replayable response for :data:`SEQ_DUPLICATE`
        and ``None`` otherwise.  A :data:`SEQ_NEW` admission updates the
        window immediately, so concurrent duplicates of the same frame
        observe it as pending.
        """
        with self._lock:
            entry = self._cache.get(seq)
            if entry is not None:
                cached_type, frames = entry
                if cached_type != frame_type:
                    return SEQ_MISMATCH, None
                return SEQ_DUPLICATE, list(frames)
            if seq in self._pending:
                return SEQ_PENDING, None
            if seq <= self.last_seq:
                return SEQ_STALE, None
            self._pending.add(seq)
            self.last_seq = seq
            return SEQ_NEW, None

    @property
    def has_pending(self) -> bool:
        """True while any admitted frame is still being applied.  An
        in-flight frame proves the client is live (blocked in an RPC,
        e.g. a long ``result`` wait), so lease reaping must not treat
        the quiet wire as abandonment."""
        with self._lock:
            return bool(self._pending)

    def record(self, seq: int, frame_type: str, frames: List[Frame]) -> None:
        """Cache the response of an admitted seq (clears in-flight)."""
        with self._lock:
            self._pending.discard(seq)
            self._cache[seq] = (frame_type, tuple(frames))
            while len(self._cache) > self.cache_limit:
                self._cache.popitem(last=False)


# -- run shape / config serialization ----------------------------------------
#
# Only the fields a control plane can faithfully reconstruct cross the
# wire.  Complex sub-configs (fault schedules, guardrails, fleet) stay
# process-local for now: attaching with one set is refused loudly
# instead of silently dropped.


def shape_to_wire(shape: Any) -> Dict[str, Any]:
    """A :class:`~repro.experiments.runner.RunShape` as a payload dict."""
    return {
        "benchmark": shape.benchmark,
        "n_units": shape.n_units,
        "n_threads": shape.n_threads,
        "target_fraction": shape.target_fraction,
        "tolerance": shape.tolerance,
        "seed": shape.seed,
        "tick_s": shape.tick_s,
        "adapt_every": shape.adapt_every,
    }


def shape_from_wire(data: Dict[str, Any]) -> Any:
    """Inverse of :func:`shape_to_wire` (unknown fields ignored)."""
    from repro.experiments.runner import RunShape

    require_str(data, "benchmark", "wire shape")
    kwargs: Dict[str, Any] = {"benchmark": data["benchmark"]}
    for key, caster in (
        ("n_units", int),
        ("n_threads", int),
        ("target_fraction", float),
        ("tolerance", float),
        ("seed", int),
        ("tick_s", float),
        ("adapt_every", int),
    ):
        if data.get(key) is not None:
            try:
                kwargs[key] = caster(data[key])
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"wire shape: bad {key!r}: {exc}"
                ) from None
    return RunShape(**kwargs)


def config_to_wire(config: Any) -> Dict[str, Any]:
    """A :class:`~repro.experiments.runner.RunConfig` as a payload dict.

    Raises :class:`~repro.errors.ConfigurationError` for configurations
    the wire cannot carry yet (custom specs, fault/guardrail/fleet
    layers) — refusing is safer than attaching a silently different run.
    """
    unsupported = [
        name
        for name in ("spec", "faults", "guardrails", "fleet")
        if getattr(config, name) is not None
    ]
    if unsupported:
        raise ConfigurationError(
            "acp attach cannot serialize config fields: "
            + ", ".join(sorted(unsupported))
        )
    supervision = config.supervision
    if supervision is not None and not isinstance(supervision, bool):
        raise ConfigurationError(
            "acp attach supports supervision=True/False only "
            "(a custom SupervisorConfig is not wire-serializable yet)"
        )
    telemetry = config.telemetry
    if telemetry is not None and not isinstance(telemetry, bool):
        raise ConfigurationError(
            "acp attach supports telemetry=True/False only"
        )
    return {
        "profile": config.profile,
        "cache_estimates": bool(config.cache_estimates),
        "supervision": bool(supervision) if supervision is not None else None,
        "checkpoint": config.checkpoint,
        "telemetry": bool(telemetry) if telemetry is not None else None,
    }


def config_from_wire(data: Dict[str, Any]) -> Any:
    """Inverse of :func:`config_to_wire` (unknown fields ignored)."""
    from repro.experiments.runner import RunConfig

    kwargs: Dict[str, Any] = {}
    if data.get("profile") is not None:
        kwargs["profile"] = str(data["profile"])
    if data.get("cache_estimates") is not None:
        kwargs["cache_estimates"] = bool(data["cache_estimates"])
    if data.get("supervision") is not None:
        kwargs["supervision"] = bool(data["supervision"])
    if data.get("checkpoint") is not None:
        try:
            kwargs["checkpoint"] = float(data["checkpoint"])
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"wire config: bad 'checkpoint': {exc}"
            ) from None
    if data.get("telemetry") is not None:
        kwargs["telemetry"] = bool(data["telemetry"])
    return RunConfig(**kwargs)
