"""Operator commands for the Adaptation Control Plane.

Dispatched from the main ``hars-repro`` entry point::

    hars-repro serve --socket /tmp/acp.sock [--http PORT] [--state-dir D]
    hars-repro attach --endpoint unix:///tmp/acp.sock \\
        --version mp-hars-ei --bench swaptions,bodytrack --units 200
    hars-repro sessions --endpoint unix:///tmp/acp.sock
    hars-repro swap-policy --endpoint unix:///tmp/acp.sock s0001 hars-i

``serve`` blocks until interrupted and announces its endpoints on
stdout (one ``acp: listening on <endpoint>`` line each — scripts parse
these to find an ephemeral ``--http 0`` port).  ``attach`` runs the
configured workload to completion on the daemon and prints the per-app
summary; ``--detach-after-start`` instead leaves it running for later
``sessions`` / ``swap-policy`` calls.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional

from repro.errors import ConfigurationError

#: The subcommands this module owns (the main CLI forwards these).
ACP_COMMANDS = ("serve", "attach", "sessions", "swap-policy")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hars-repro",
        description="Adaptation Control Plane operator commands.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the ACP daemon")
    serve.add_argument("--socket", default=None, metavar="PATH")
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve HTTP (0 picks an ephemeral port)",
    )
    serve.add_argument("--state-dir", default=None, metavar="DIR")
    serve.add_argument(
        "--quantum",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated seconds per segment between command drains",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="orphan sessions whose clients send no frame for this long "
        "(default: sessions never expire)",
    )

    attach = sub.add_parser("attach", help="attach a run to a daemon")
    attach.add_argument("--endpoint", required=True)
    attach.add_argument("--version", default="hars")
    attach.add_argument(
        "--bench",
        default="swaptions",
        help="benchmark, or comma-separated list for a multi-app run",
    )
    attach.add_argument("--units", type=int, default=None)
    attach.add_argument("--target", type=float, default=0.5)
    attach.add_argument("--seed", type=int, default=0)
    attach.add_argument("--session-id", default=None)
    attach.add_argument(
        "--resume",
        default=None,
        metavar="SESSION",
        help="warm-restore from a recovered checkpoint store "
        "('-' means the --session-id store)",
    )
    attach.add_argument(
        "--detach-after-start",
        action="store_true",
        help="start the run and return (daemon keeps driving it)",
    )

    sessions = sub.add_parser("sessions", help="list a daemon's sessions")
    sessions.add_argument("--endpoint", required=True)

    swap = sub.add_parser(
        "swap-policy", help="hot-swap a running session's policy"
    )
    swap.add_argument("--endpoint", required=True)
    swap.add_argument("session_id")
    swap.add_argument("policy")
    swap.add_argument("--adapt-every", type=int, default=None)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.acp.transport import AcpDaemon

    daemon = AcpDaemon(
        socket_path=args.socket,
        http_port=args.http,
        state_dir=args.state_dir,
        quantum_s=args.quantum,
        lease_ttl_s=args.lease_ttl,
    )
    daemon.start()
    for endpoint in daemon.endpoints():
        print(f"acp: listening on {endpoint}", flush=True)
    if daemon.acp.ledger:
        for entry in daemon.acp.ledger:
            print(f"acp: recovery ledger: {entry}", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop()
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    from repro.acp.client import AcpClient
    from repro.experiments.runner import RunShape

    benches = [b.strip() for b in args.bench.split(",") if b.strip()]
    shapes = [
        RunShape(
            benchmark=bench,
            n_units=args.units,
            target_fraction=args.target,
            seed=args.seed,
        )
        for bench in benches
    ]
    resume = args.resume
    if resume == "-":
        if args.session_id is None:
            raise ConfigurationError("--resume - needs --session-id")
        resume = True
    client = AcpClient(args.endpoint)
    handle = client.attach(
        args.version,
        shapes if len(shapes) > 1 else shapes[0],
        session_id=args.session_id,
        resume=resume,
    )
    print(f"acp: attached {handle.session_id} ({args.version}: "
          f"{', '.join(benches)})")
    status = handle.run()
    if args.detach_after_start:
        print(f"acp: running in the background, state={status['state']}")
        return 0
    outcome = handle.result()
    for app in outcome.metrics.apps:
        print(
            f"  {app.app_name}: heartbeats={app.heartbeats}  "
            f"rate={app.overall_rate:.2f} hb/s  "
            f"norm-perf={app.mean_normalized_perf:.3f}"
        )
    handle.detach()
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    from repro.acp.client import AcpClient

    listing = AcpClient(args.endpoint).sessions()
    if not listing["sessions"]:
        print("acp: no sessions attached")
    for status in listing["sessions"]:
        line = (
            f"  {status['session_id']}  state={status['state']}  "
            f"version={status['version']}  t={status['time_s']:.2f}s  "
            f"apps={','.join(status['apps'])}"
        )
        if status.get("error"):
            line += f"  error={status['error']}"
        print(line)
    for status in listing.get("orphaned", []):
        print(
            f"  {status['session_id']}  state=orphaned  "
            f"(lease expired while {status.get('prior_state', '?')}; "
            f"attach --resume {status['session_id']} to recover)"
        )
    if listing["recovered"]:
        print(f"acp: recovered checkpoint stores: "
              f"{', '.join(listing['recovered'])}")
    for entry in listing["ledger"]:
        print(f"acp: recovery ledger: {entry}")
    return 0


def _cmd_swap_policy(args: argparse.Namespace) -> int:
    from repro.acp.client import AcpClient

    client = AcpClient(args.endpoint)
    result = client.session(args.session_id).swap_policy(
        args.policy, adapt_every=args.adapt_every
    )
    print(
        f"acp: {args.session_id} now under {result['policy']} "
        f"(controllers: {', '.join(result['controllers'])}, "
        f"t={result['time_s']:.2f}s)"
    )
    return 0


_COMMANDS = {
    "serve": _cmd_serve,
    "attach": _cmd_attach,
    "sessions": _cmd_sessions,
    "swap-policy": _cmd_swap_policy,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"acp: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised by the smoke script
    sys.exit(main())
