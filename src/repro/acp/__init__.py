"""Adaptation Control Plane (ACP): the first process boundary.

Until this package existed the MAPE-K controllers lived inside the
simulation process: one tenant per run, a controller change meant a
restart, and a controller crash took the managed system down with it.
The ACP splits the two along the kernel's bus/actuation seam:

* :mod:`repro.acp.wire`      — the versioned JSONL frame format every
  message crosses the boundary in (schema-checked, forward-tolerant);
* :mod:`repro.acp.session`   — one managed system attached to the
  daemon: a session state machine wrapping a
  :class:`~repro.experiments.runner.PreparedRun`, stepped in bounded
  segments so control frames (policy swap, checkpoint, detach) can
  interleave with execution;
* :mod:`repro.acp.server`    — the transport-agnostic control plane:
  session registry, frame dispatch, crash quarantine, checkpoint
  persistence and restart recovery, live Prometheus text;
* :mod:`repro.acp.transport` — the daemon shells: Unix-socket JSONL and
  HTTP (``POST /v1/frames``, ``GET /metrics``, ``GET /v1/sessions``);
* :mod:`repro.acp.client`    — the *stable* typed SDK
  (:class:`~repro.acp.client.AcpClient` /
  :class:`~repro.acp.client.SessionHandle`); the raw socket protocol
  stays internal;
* :mod:`repro.acp.chaos`     — seeded wire chaos
  (:class:`~repro.acp.chaos.AcpFaultConfig` /
  :class:`~repro.acp.chaos.FaultyTransport`) plus the resilience
  machinery it exercises: per-session seq windows with replay dedup,
  bounded client retry, session leases with orphan/resume, and the
  SIGKILL crash drill (``scripts/acp_chaos_drill.py``).

Attaching a simulation through the in-process loopback transport is
bit-identical to running it in-process
(``tests/acp/test_loopback_identity.py`` is the gate): both paths step
the same :class:`~repro.experiments.runner.PreparedRun` through the same
engine loop — the boundary serializes observations and commands, never
the physics.
"""

from repro.acp.chaos import AcpFaultConfig, FaultyTransport
from repro.acp.client import (
    AcpClient,
    AcpError,
    AcpTransportError,
    RetryPolicy,
    SessionHandle,
)
from repro.acp.server import AcpServer
from repro.acp.wire import WIRE_SCHEMA_VERSION, Frame, SeqWindow

__all__ = [
    "AcpClient",
    "AcpError",
    "AcpFaultConfig",
    "AcpServer",
    "AcpTransportError",
    "FaultyTransport",
    "Frame",
    "RetryPolicy",
    "SeqWindow",
    "SessionHandle",
    "WIRE_SCHEMA_VERSION",
]
