"""Command-line interface: ``hars-repro <experiment> [--quick]``.

Regenerates the paper's tables and figures from the terminal::

    hars-repro table3.1
    hars-repro fig5.1 [--quick]
    hars-repro fig5.2 [--quick]
    hars-repro fig5.3 [--quick]
    hars-repro fig5.4 [--quick]
    hars-repro fig5.5-7 [--quick]
    hars-repro telemetry [--quick] [--format summary|jsonl|prometheus|csv]
    hars-repro fleet [--nodes N] [--requests N] [--router NAME] [--shards N]
                     [--crash-frac F [--crash-at S] [--no-failover]]
                     [--retry-timeout S]
    hars-repro all [--quick]

Adaptation Control Plane commands (see :mod:`repro.acp.cli`)::

    hars-repro serve --socket /tmp/acp.sock [--http PORT] [--state-dir D]
    hars-repro attach --endpoint unix:///tmp/acp.sock --version VERSION
                      --bench B1[,B2...] [--units N]
    hars-repro sessions --endpoint ENDPOINT
    hars-repro swap-policy --endpoint ENDPOINT SESSION POLICY

``--quick`` scales the workloads down (~80 heartbeats per benchmark) for
a fast sanity pass; omit it for the native-input sizes used in
EXPERIMENTS.md.  ``fleet`` runs the request-driven serving scenario
(:mod:`repro.fleet`) and is excluded from ``all`` — a native fleet run
steps hundreds of node simulations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.fig5_1 import run_fig5_1
from repro.experiments.fig5_2 import gain_compression, run_fig5_2
from repro.experiments.fig5_3 import run_fig5_3
from repro.experiments.fig5_4 import run_fig5_4
from repro.experiments.fig5_5_7 import run_fig5_5_7
from repro.experiments.serialize import (
    behaviour_to_dict,
    comparison_to_dict,
    dump_json,
    multi_comparison_to_dict,
    sweep_to_dict,
)
from repro.experiments.table3_1 import build_table, render_table

#: Heartbeat count per benchmark in --quick mode.
QUICK_UNITS = 80

_EXPERIMENTS = (
    "table3.1",
    "fig5.1",
    "fig5.2",
    "fig5.3",
    "fig5.4",
    "fig5.5-7",
    "accuracy",
    "telemetry",
    "fleet",
    "all",
)

#: Experiments ``all`` skips: the fleet scenario steps hundreds of node
#: simulations and is run explicitly instead.
_NOT_IN_ALL = ("fleet",)

#: Export formats the ``telemetry`` experiment understands.
TELEMETRY_FORMATS = ("summary", "jsonl", "prometheus", "csv")


def _run_table3_1(_: Optional[int], __: Optional[List[str]]):
    print("Table 3.1 — thread assignment (C_B = C_L = 4, r = 1.5)")
    print(render_table(build_table()))
    return None


def _run_fig5_1(n_units: Optional[int], benchmarks: Optional[List[str]]):
    comparison = run_fig5_1(n_units=n_units, benchmarks=benchmarks)
    print(comparison.render())
    return comparison_to_dict(comparison)


def _run_fig5_2(n_units: Optional[int], benchmarks: Optional[List[str]]):
    default = run_fig5_1(n_units=n_units, benchmarks=benchmarks)
    high = run_fig5_2(n_units=n_units, benchmarks=benchmarks)
    print(high.render())
    print("\nGain compression vs default target (values < 1 expected):")
    for version, ratio in gain_compression(default, high).items():
        print(f"  {version}: {ratio:.2f}")
    return comparison_to_dict(high)


def _run_fig5_3(n_units: Optional[int], benchmarks: Optional[List[str]]):
    sweep = run_fig5_3(n_units=n_units, benchmarks=benchmarks)
    print(sweep.render())
    for target in sorted(sweep.efficiency):
        print(f"knee at target {target:.0%}: d = {sweep.knee(target)}")
    return sweep_to_dict(sweep)


def _run_fig5_4(n_units: Optional[int], _: Optional[List[str]]):
    comparison = run_fig5_4(n_units=n_units)
    print(comparison.render())
    return multi_comparison_to_dict(comparison)


def _run_fig5_5_7(n_units: Optional[int], _: Optional[List[str]]):
    runs = run_fig5_5_7(n_units=n_units)
    for version, run in runs.items():
        print(run.render())
        print()
    return {
        "kind": "behaviour-runs",
        "runs": {v: behaviour_to_dict(r) for v, r in runs.items()},
    }


def _run_accuracy(n_units: Optional[int], benchmarks: Optional[List[str]]):
    """Estimator validation: measured vs predicted over a state sample."""
    from repro.core.calibration import calibrate
    from repro.core.perf_estimator import PerformanceEstimator
    from repro.experiments.accuracy import evaluate_accuracy
    from repro.platform.spec import odroid_xu3
    from repro.workloads.parsec import BENCHMARKS, make_benchmark, resolve_name

    spec = odroid_xu3()
    names = [resolve_name(b) for b in benchmarks] if benchmarks else list(BENCHMARKS)
    units = n_units or 30
    payload = {}
    for name in names:
        report = evaluate_accuracy(
            spec,
            lambda: make_benchmark(name, n_units=units),
            name,
            PerformanceEstimator(),
            calibrate(spec),
            probe_units=units,
        )
        print(report.render())
        print()
        payload[name] = {
            "rate_mape": report.rate_mape,
            "power_mape": report.power_mape,
        }
    return {"kind": "estimator-accuracy", "mape": payload}


def _run_telemetry(
    n_units: Optional[int],
    benchmarks: Optional[List[str]],
    fmt: str = "summary",
    power_cap_w: Optional[float] = None,
):
    """One instrumented HARS-E run, exported in the chosen format.

    The run itself is a standard Figure 5.1-style single-application run
    (first ``--bench`` entry, default swaptions); the output is its full
    metrics-registry snapshot through one of the
    :mod:`repro.telemetry.exporters`.  ``--power-cap`` additionally
    attaches the guardrail layer with a run-wide budget, so the snapshot
    carries the trip counters and throttle stats.
    """
    from repro.experiments.runner import RunConfig, RunShape, run
    from repro.guardrails import GuardrailConfig
    from repro.telemetry import exporters
    from repro.workloads.parsec import resolve_name

    name = resolve_name(benchmarks[0]) if benchmarks else "swaptions"
    shape = RunShape(benchmark=name, n_units=n_units)
    guardrails = (
        GuardrailConfig(power_cap_w=power_cap_w)
        if power_cap_w is not None
        else None
    )
    outcome = run(
        "hars-e", shape, RunConfig(telemetry=True, guardrails=guardrails)
    )
    snapshot = outcome.telemetry.registry.snapshot()
    renderers = {
        "summary": exporters.summary_table,
        "jsonl": exporters.snapshot_to_jsonl,
        "prometheus": exporters.snapshot_to_prometheus,
        "csv": exporters.snapshot_to_csv,
    }
    print(renderers[fmt](snapshot).rstrip("\n"))
    return {"kind": "telemetry-snapshot", "snapshot": snapshot}


def _run_fleet(
    router: str = "deadline-risk",
    nodes: int = 50,
    requests: int = 10_000,
    shards: int = 1,
    trace: str = "poisson",
    seed: int = 0,
    crash_frac: float = 0.0,
    crash_at: float = 5.0,
    failover: bool = True,
    retry_timeout: float = 0.0,
):
    """One fleet serving run; prints the SLO/energy summary line."""
    from repro.experiments.runner import RunConfig, run
    from repro.fleet import (
        FleetConfig,
        FleetFaultConfig,
        ROUTERS,
        ResilienceConfig,
        crash_wave,
    )

    names = list(ROUTERS) if router == "all" else [router]
    chaos = None
    if crash_frac > 0:
        chaos = FleetFaultConfig(
            schedule=crash_wave(nodes, crash_frac, crash_at), seed=seed
        )
    resilience = None
    if not failover or retry_timeout > 0:
        resilience = ResilienceConfig(
            failover=failover,
            attempt_timeout_s=retry_timeout if retry_timeout > 0 else None,
        )
    config = RunConfig(
        fleet=FleetConfig(
            nodes=nodes,
            requests=requests,
            shards=shards,
            trace=trace,
            seed=seed,
            chaos=chaos,
            resilience=resilience,
        )
    )
    payload = {}
    for name in names:
        result = run(name, config=config)
        payload[name] = result.summary()
        print(
            f"{name:>13}: p50={result.p50_s * 1e3:7.1f} ms  "
            f"p95={result.p95_s * 1e3:7.1f} ms  "
            f"p99={result.p99_s * 1e3:7.1f} ms  "
            f"miss={result.miss_ratio:6.3%}  "
            f"energy={result.energy_j:9.1f} J  "
            f"completed={result.completed}/{result.requests}"
        )
        if chaos is not None or resilience is not None:
            counts = result.resilience
            print(
                f"{'':>13}  crashes={counts['crashes']}  "
                f"restarts={counts['restarts']}  "
                f"evictions={counts['evictions']}  "
                f"requeued={counts['requeued']}  "
                f"retries={counts['retries']}  "
                f"unserved={dict(sorted(result.unserved_causes.items()))}"
            )
    return {"kind": "fleet-serving", "runs": payload}


_RUNNERS = {
    "table3.1": _run_table3_1,
    "fig5.1": _run_fig5_1,
    "fig5.2": _run_fig5_2,
    "fig5.3": _run_fig5_3,
    "fig5.4": _run_fig5_4,
    "accuracy": _run_accuracy,
    "fig5.5-7": _run_fig5_5_7,
    "telemetry": _run_telemetry,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in ("serve", "attach", "sessions", "swap-policy"):
        # Control-plane operator commands live in their own parser
        # (their flags share nothing with the experiment runners).
        from repro.acp.cli import main as acp_main

        return acp_main(argv)
    parser = argparse.ArgumentParser(
        prog="hars-repro",
        description="Regenerate the HARS paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=_EXPERIMENTS)
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"scale benchmarks to {QUICK_UNITS} heartbeats",
    )
    parser.add_argument(
        "--units",
        type=int,
        default=None,
        help="explicit heartbeat count per benchmark",
    )
    parser.add_argument(
        "--bench",
        default=None,
        help="comma-separated benchmark subset for fig5.1/5.2/5.3 "
        "(names or codes, e.g. BL,swaptions)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the experiment's results as JSON",
    )
    parser.add_argument(
        "--format",
        choices=TELEMETRY_FORMATS,
        default="summary",
        help="export format for the telemetry experiment",
    )
    parser.add_argument(
        "--power-cap",
        type=float,
        default=None,
        metavar="WATTS",
        help="telemetry experiment only: attach the guardrail layer "
        "with this run-wide power budget",
    )
    fleet_group = parser.add_argument_group("fleet experiment")
    fleet_group.add_argument(
        "--nodes", type=int, default=50, help="fleet size (default 50)"
    )
    fleet_group.add_argument(
        "--requests",
        type=int,
        default=10_000,
        help="requests in the arrival trace (default 10000)",
    )
    fleet_group.add_argument(
        "--router",
        default="deadline-risk",
        help="routing policy, or 'all' to compare every router "
        "(round-robin, least-loaded, deadline-risk)",
    )
    fleet_group.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard count for the cluster scheduler (results are "
        "identical for any value)",
    )
    fleet_group.add_argument(
        "--trace",
        default="poisson",
        help="arrival trace shape: poisson, diurnal, or burst",
    )
    fleet_group.add_argument(
        "--seed", type=int, default=0, help="arrival-trace RNG seed"
    )
    fleet_group.add_argument(
        "--crash-frac",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="crash this fraction of the fleet in one wave (0 = no chaos)",
    )
    fleet_group.add_argument(
        "--crash-at",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="simulated time of the crash wave (default 5.0)",
    )
    fleet_group.add_argument(
        "--no-failover",
        action="store_true",
        help="disable health-checked failover routing (chaos ablation)",
    )
    fleet_group.add_argument(
        "--retry-timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-attempt timeout enabling capped retry (0 = off)",
    )
    args = parser.parse_args(argv)
    n_units = args.units if args.units is not None else (
        QUICK_UNITS if args.quick else None
    )
    benchmarks = args.bench.split(",") if args.bench else None
    names = (
        [n for n in _EXPERIMENTS if n != "all" and n not in _NOT_IN_ALL]
        if args.experiment == "all"
        else [args.experiment]
    )
    payloads = {}
    for name in names:
        print(f"=== {name} ===")
        if name == "telemetry":
            payload = _run_telemetry(
                n_units,
                benchmarks,
                fmt=args.format,
                power_cap_w=args.power_cap,
            )
        elif name == "fleet":
            payload = _run_fleet(
                router=args.router,
                nodes=args.nodes,
                requests=args.requests,
                shards=args.shards,
                trace=args.trace,
                seed=args.seed,
                crash_frac=args.crash_frac,
                crash_at=args.crash_at,
                failover=not args.no_failover,
                retry_timeout=args.retry_timeout,
            )
        else:
            payload = _RUNNERS[name](n_units, benchmarks)
        if payload is not None:
            payloads[name] = payload
        print()
    if args.json:
        dump_json(
            payloads if len(payloads) != 1 else next(iter(payloads.values())),
            args.json,
        )
        print(f"results written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
