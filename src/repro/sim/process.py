"""Simulated application processes.

A :class:`SimApp` binds a workload model to its threads, heartbeat log
and performance target — one self-adaptive application as the runtime
managers see it.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.heartbeats.monitor import DEFAULT_RATE_WINDOW, HeartbeatMonitor
from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.targets import PerformanceTarget
from repro.sim.thread import SimThread
from repro.workloads.base import WorkloadModel


class SimApp:
    """One running self-adaptive application."""

    def __init__(
        self,
        name: str,
        model: WorkloadModel,
        target: PerformanceTarget,
        cpuset: Optional[FrozenSet[int]] = None,
        rate_window: int = DEFAULT_RATE_WINDOW,
    ):
        if not name:
            raise ConfigurationError("application needs a name")
        if cpuset is not None and not cpuset:
            raise ConfigurationError(f"{name}: empty cpuset")
        self.name = name
        self.model = model
        self.target = target
        self.cpuset = cpuset
        self.log = HeartbeatLog(app_name=name)
        self.monitor = HeartbeatMonitor(self.log, target, rate_window)
        self.threads: List[SimThread] = [
            SimThread(app_name=name, local_index=i)
            for i in range(model.n_threads)
        ]
        #: Halted apps (crashed, hung, or evicted) are never scheduled
        #: again; their work units stay unconsumed.
        self.halted = False
        #: A runaway app has escaped its pinning and runs uncontrolled.
        self.runaway = False
        #: Thread-speed multiplier (1.0 normally; > 1 during a runaway
        #: episode — the engine gates on ``!= 1.0`` so healthy runs take
        #: the exact pre-fault code path).
        self.speed_factor = 1.0

    @property
    def n_threads(self) -> int:
        return self.model.n_threads

    def is_done(self) -> bool:
        """Whether the workload has completed all its work."""
        return self.model.is_done()

    def allowed_cores(
        self, thread: SimThread, platform_cores: Tuple[int, ...]
    ) -> FrozenSet[int]:
        """Effective allowed core set for one thread.

        Thread affinity (if pinned) intersected with the app cpuset,
        falling back to the full platform.  An empty intersection is a
        configuration bug and raises.
        """
        allowed = frozenset(platform_cores)
        if self.cpuset is not None:
            allowed &= self.cpuset
        if thread.affinity is not None:
            allowed &= thread.affinity
        if not allowed:
            raise ConfigurationError(
                f"{thread.key()}: affinity ∩ cpuset is empty"
            )
        return allowed

    def clear_affinities(self) -> None:
        """Unpin every thread (back to pure GTS scheduling)."""
        for thread in self.threads:
            thread.set_affinity(None)

    def set_cpuset(self, cpuset: Optional[FrozenSet[int]]) -> None:
        """Restrict the whole app to a core set (``None`` = all cores)."""
        if cpuset is not None and not cpuset:
            raise ConfigurationError(f"{self.name}: empty cpuset")
        self.cpuset = cpuset

    def cores_in_use(self) -> Tuple[int, ...]:
        """Distinct cores the app's threads currently sit on."""
        return tuple(
            sorted(
                {
                    t.current_core
                    for t in self.threads
                    if t.current_core is not None
                }
            )
        )
