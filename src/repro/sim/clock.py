"""Simulated clock.

All simulated time is float seconds starting at zero.  The clock only
moves forward, in engine-tick increments.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated-time source."""

    def __init__(self) -> None:
        self._now_s = 0.0

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_s

    def advance(self, dt_s: float) -> float:
        """Advance by ``dt_s`` seconds and return the new time."""
        if dt_s <= 0:
            raise SimulationError(f"clock can only move forward, got dt={dt_s}")
        self._now_s += dt_s
        return self._now_s

    def reset(self) -> None:
        """Return to time zero (between independent runs)."""
        self._now_s = 0.0
