"""Simulated threads.

A :class:`SimThread` is the schedulable unit: it belongs to one
application, maps to one of the workload model's thread indices, carries
an affinity mask (the simulated ``sched_setaffinity`` state) and a
load-average signal that the GTS scheduler model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.errors import SimulationError

#: Load-tracking exponential time constant (seconds).  Chosen near the
#: effective horizon of the kernel's per-entity load tracking so threads
#: ramp to "heavy" within a few hundred milliseconds of becoming busy.
LOAD_TIME_CONSTANT_S = 0.1

#: New tasks start heavy — the HMP scheduler's fork/exec placement puts
#: fresh CPU-hungry threads on the big cluster.
INITIAL_LOAD = 1.0


@dataclass
class SimThread:
    """Runtime state of one application thread.

    Parameters
    ----------
    app_name:
        Owning application.
    local_index:
        Thread index inside the application's workload model (this is the
        thread-ID ordering the chunk/interleaving schedulers rely on).
    affinity:
        Allowed core ids (``None`` = unrestricted within the app cpuset).
    """

    app_name: str
    local_index: int
    affinity: Optional[FrozenSet[int]] = None
    current_core: Optional[int] = None
    load: float = INITIAL_LOAD
    #: Flat index assigned by the engine's fast profile.
    _slot: int = field(default=-1, repr=False)
    #: GTS partition-cache entry (see :class:`~repro.sched.gts.GtsScheduler`).
    _gts_entry: Optional[tuple] = field(default=None, repr=False)

    def set_affinity(self, mask: Optional[FrozenSet[int]]) -> None:
        """Simulated ``sched_setaffinity``; ``None`` clears the pin."""
        if mask is not None and not mask:
            raise SimulationError(
                f"{self.app_name}/t{self.local_index}: empty affinity mask"
            )
        self.affinity = mask

    def update_load(
        self,
        demand: float,
        dt_s: float,
        tau_s: float = LOAD_TIME_CONSTANT_S,
    ) -> None:
        """Exponentially-decayed runnable-demand tracking.

        ``demand`` is the fraction of the interval the thread was
        *runnable* — running or waiting on a run queue, as opposed to
        voluntarily sleeping.  Booleans are accepted for convenience.
        This is the signal Linux's load tracking feeds the HMP up/down
        migration decisions.
        """
        if dt_s <= 0:
            raise SimulationError("load update needs positive dt")
        demand = float(demand)
        if not 0.0 <= demand <= 1.0:
            raise SimulationError(f"demand {demand} not in [0, 1]")
        import math

        decay = math.exp(-dt_s / tau_s)
        self.load = self.load * decay + demand * (1.0 - decay)

    def key(self) -> str:
        """Stable identity string for placement maps and traces."""
        return f"{self.app_name}/t{self.local_index}"
