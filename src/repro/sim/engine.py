"""Time-stepped HMP simulation engine.

Each tick (default 10 ms of simulated time) the engine:

1. runs every controller's ``on_tick`` hook (runtime managers adapt here),
2. asks the OS scheduler model for a placement (core → threads),
3. divides each core's tick capacity fairly among its threads and grants
   the resulting work budget to the workload models,
4. collects per-thread consumption back, emits heartbeats, and fires
   controllers' ``on_heartbeat`` hooks,
5. evaluates the ground-truth power model from per-core utilization and
   feeds the power sensor, and
6. updates each thread's load-tracking signal for the GTS model.

The engine is deterministic: all randomness lives inside seeded workload
profiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.dvfs import DvfsController
from repro.platform.machine import Machine
from repro.platform.power import CoreActivity, PowerModel
from repro.platform.sensor import PowerSensor
from repro.platform.spec import PlatformSpec
from repro.sched.base import Scheduler
from repro.sched.gts import GtsScheduler
from repro.sim.clock import SimClock
from repro.sim.controller import Controller
from repro.sim.process import SimApp
from repro.sim.tracing import TracePoint, TraceRecorder

#: Default tick length (10 ms), far below the 263.8 ms sensor period.
DEFAULT_TICK_S = 0.01

#: Hard cap on ticks per run — guards against runaway configurations.
MAX_TICKS = 2_000_000


class Simulation:
    """One simulated machine running one or more applications."""

    def __init__(
        self,
        spec: PlatformSpec,
        tick_s: float = DEFAULT_TICK_S,
        scheduler: Optional[Scheduler] = None,
    ):
        if tick_s <= 0:
            raise ConfigurationError("tick must be positive")
        self.spec = spec
        self.tick_s = tick_s
        self.machine = Machine(spec)
        self.dvfs = DvfsController(self.machine)
        self.power_model = PowerModel(spec)
        self.sensor = PowerSensor()
        self.clock = SimClock()
        self.scheduler: Scheduler = scheduler or GtsScheduler()
        self.apps: List[SimApp] = []
        self._apps_by_name: Dict[str, SimApp] = {}
        self.controllers: List[Controller] = []
        self.trace = TraceRecorder()
        #: Per-core utilization of the most recent tick (0..1), the
        #: signal utilization-driven governors (ondemand) consume.
        self.last_core_utilization: Dict[int, float] = {}
        self._started = False

    # -- setup ---------------------------------------------------------------

    def add_app(self, app: SimApp) -> SimApp:
        """Register an application before the run starts."""
        if self._started:
            raise SimulationError("cannot add apps after the run started")
        if app.name in self._apps_by_name:
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        self.apps.append(app)
        self._apps_by_name[app.name] = app
        return app

    def add_controller(self, controller: Controller) -> Controller:
        """Register a runtime-system controller."""
        if self._started:
            raise SimulationError("cannot add controllers after the run started")
        self.controllers.append(controller)
        return controller

    def app(self, name: str) -> SimApp:
        """Look up a registered application by name (O(1))."""
        try:
            return self._apps_by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown app {name!r}") from None

    # -- run loop --------------------------------------------------------------

    def run(self, until_s: Optional[float] = None) -> float:
        """Run until every app finishes (or ``until_s`` elapses).

        Returns the simulated time at exit.  Apps that never finish
        (e.g. the microbenchmark) require ``until_s``.
        """
        if not self.apps:
            raise SimulationError("no applications registered")
        if until_s is None and any(
            app.model.total_heartbeats() == 0 for app in self.apps
        ):
            raise SimulationError(
                "endless workloads present: run() needs an explicit until_s"
            )
        if not self._started:
            self._started = True
            for controller in self.controllers:
                controller.on_start(self)
        ticks = 0
        while not self._all_done():
            if until_s is not None and self.clock.now_s >= until_s - 1e-9:
                break
            self.step()
            ticks += 1
            if ticks > MAX_TICKS:
                raise SimulationError(
                    f"run exceeded {MAX_TICKS} ticks "
                    f"({self.clock.now_s:.0f}s simulated) — likely stalled"
                )
        return self.clock.now_s

    def step(self) -> None:
        """Advance the simulation by exactly one tick."""
        if not self._started:
            self._started = True
            for controller in self.controllers:
                controller.on_start(self)
        dt = self.tick_s
        for controller in self.controllers:
            controller.on_tick(self)

        placement = self.scheduler.place(self)
        busy, busy_activity, demand = self._execute_tick(placement, dt)
        self._integrate_power(busy, busy_activity, dt)

        for app in self.apps:
            for thread in app.threads:
                thread.update_load(
                    demand.get((app.name, thread.local_index), 0.0), dt
                )

        self.clock.advance(dt)

    # -- internals ----------------------------------------------------------------

    def _all_done(self) -> bool:
        return all(app.is_done() for app in self.apps)

    #: Maximum grant/advance rounds per tick.  Round 1 is the fair share;
    #: later rounds redistribute core time a blocking thread left unused
    #: (a real scheduler switches to the runnable co-tenant immediately).
    GRANT_ROUNDS = 3

    def _execute_tick(
        self, placement: Dict[int, List], dt: float
    ) -> Tuple[Dict[int, float], Dict[int, float], Dict[Tuple[str, int], float]]:
        """Grant core time, advance workloads, and account busy time.

        Returns per-core busy seconds, per-core busy·activity sums for
        the power model, and per-thread *demand* (runnable fraction of
        the tick) for load tracking: a thread that stayed hungry through
        every round was runnable the whole tick (demand 1); a thread that
        blocked shows the fraction of its granted time it actually used.
        """
        busy: Dict[int, float] = {}
        busy_activity: Dict[int, float] = {}
        thread_busy: Dict[Tuple[str, int], float] = {}
        thread_granted: Dict[Tuple[str, int], float] = {}
        blocked: set = set()
        end_time = self.clock.now_s + dt
        remaining: Dict[int, float] = {}  # core id -> unclaimed seconds
        hungry: Dict[int, List] = {}  # core id -> threads still consuming
        for core_id, threads in placement.items():
            if threads:
                remaining[core_id] = dt
                hungry[core_id] = list(threads)

        for _ in range(self.GRANT_ROUNDS):
            grants: Dict[str, Dict[int, float]] = {}
            meta: Dict[Tuple[str, int], Tuple[float, float, int]] = {}
            for core_id, threads in hungry.items():
                if not threads or remaining[core_id] <= 1e-9:
                    continue
                cluster = self.machine.cluster_of_core(core_id)
                freq = self.machine.freq_mhz(cluster.name)
                share_s = remaining[core_id] / len(threads)
                for thread in threads:
                    app = self.app(thread.app_name)
                    speed = app.model.thread_speed(
                        cluster.name, cluster.core_type, freq
                    )
                    grants.setdefault(app.name, {})[thread.local_index] = (
                        share_s * speed
                    )
                    meta[(app.name, thread.local_index)] = (
                        share_s,
                        speed,
                        core_id,
                    )
            if not grants:
                break

            satisfied: set = set()
            for app in self.apps:
                app_grants = grants.get(app.name)
                if not app_grants:
                    continue
                result = app.model.advance(app_grants)
                for local_index, granted in app_grants.items():
                    consumed = result.consumed.get(local_index, 0.0)
                    share_s, speed, core_id = meta[(app.name, local_index)]
                    busy_s = min(share_s, consumed / speed) if speed > 0 else 0.0
                    key = (app.name, local_index)
                    busy[core_id] = busy.get(core_id, 0.0) + busy_s
                    busy_activity[core_id] = (
                        busy_activity.get(core_id, 0.0)
                        + busy_s * app.model.traits.activity_factor
                    )
                    thread_busy[key] = thread_busy.get(key, 0.0) + busy_s
                    thread_granted[key] = thread_granted.get(key, 0.0) + share_s
                    remaining[core_id] -= busy_s
                    if consumed < granted * 0.999:
                        # The thread blocked (barrier, empty/full queue):
                        # it takes no further time this tick.
                        satisfied.add(key)
                        blocked.add(key)
                for i in range(result.heartbeats):
                    tag = (
                        result.heartbeat_tags[i]
                        if i < len(result.heartbeat_tags)
                        else ""
                    )
                    heartbeat = app.log.emit(end_time, tag)
                    for controller in self.controllers:
                        controller.on_heartbeat(self, app, heartbeat)
                    self._record_trace(app)

            still_hungry = False
            for core_id in list(hungry):
                hungry[core_id] = [
                    t
                    for t in hungry[core_id]
                    if (t.app_name, t.local_index) not in satisfied
                ]
                if hungry[core_id] and remaining[core_id] > dt * 0.01:
                    still_hungry = True
            if not still_hungry:
                break

        demand: Dict[Tuple[str, int], float] = {}
        for key, granted_s in thread_granted.items():
            if key in blocked and granted_s > 0:
                # Blocked threads were runnable only while they used CPU.
                demand[key] = min(1.0, thread_busy.get(key, 0.0) / granted_s)
            else:
                demand[key] = 1.0  # hungry through every round: runnable
        return busy, busy_activity, demand

    def _integrate_power(
        self,
        busy: Dict[int, float],
        busy_activity: Dict[int, float],
        dt: float,
    ) -> None:
        self.last_core_utilization = {
            core_id: min(1.0, busy_s / dt) for core_id, busy_s in busy.items()
        }
        activities: Dict[int, CoreActivity] = {}
        for core_id, busy_s in busy.items():
            utilization = min(1.0, busy_s / dt)
            if busy_s > 0:
                activity = min(1.0, busy_activity[core_id] / busy_s)
            else:
                activity = 1.0
            activities[core_id] = CoreActivity(
                utilization=utilization, activity_factor=activity
            )
        watts = self.power_model.platform_power(self.machine, activities)
        self.sensor.record(dt, watts)

    def _record_trace(self, app: SimApp) -> None:
        allocation: Optional[Tuple[int, int]] = None
        for controller in self.controllers:
            allocation = controller.current_allocation(app.name)
            if allocation is not None:
                break
        if allocation is None:
            cores = app.cores_in_use()
            n_big = sum(1 for c in cores if self.spec.big.contains_core(c))
            allocation = (n_big, len(cores) - n_big)
        last = app.log.last
        if last is None:  # pragma: no cover - emit precedes record
            return
        self.trace.record(
            app.name,
            TracePoint(
                time_s=last.time_s,
                hb_index=last.index,
                rate=app.monitor.current_rate(),
                big_cores=allocation[0],
                little_cores=allocation[1],
                big_freq_mhz=self.machine.freq_mhz(BIG),
                little_freq_mhz=self.machine.freq_mhz(LITTLE),
            ),
        )
