"""Time-stepped HMP simulation engine.

Each tick (default 10 ms of simulated time) the engine:

1. publishes :class:`~repro.kernel.bus.TickStart` on the kernel bus
   (runtime managers adapt here),
2. asks the OS scheduler model for a placement (core → threads),
3. divides each core's tick capacity fairly among its threads and grants
   the resulting work budget to the workload models,
4. collects per-thread consumption back, emits heartbeats, and publishes
   :class:`~repro.kernel.bus.HeartbeatEmitted` per heartbeat,
5. evaluates the ground-truth power model from per-core utilization,
   feeds the power sensor, and publishes
   :class:`~repro.kernel.bus.PowerSample`,
6. publishes :class:`~repro.kernel.bus.AppFinished` for apps that just
   consumed their last work unit, and
7. updates each thread's load-tracking signal for the GTS model.

Controllers attach through bus subscriptions
(:meth:`~repro.sim.controller.Controller.attach`); the engine never
calls their hooks directly after ``on_start``.

Three execution profiles produce byte-identical metrics:

* ``"fast"`` (default) — preallocated per-thread/per-core arrays, one
  thread-speed evaluation per (app, cluster, round), coefficient-cached
  power integration.
* ``"legacy"`` — the original dict-per-tick implementation, kept
  verbatim as the reference for ``benchmarks/bench_kernel_overhead.py``.
* ``"vector"`` — the fast tick path plus the vectorized batch planner
  (:mod:`repro.kernel.batchplan`): managers plan over dense state-space
  tensors instead of the scalar Algorithm 2 loop, bit-identically
  (``benchmarks/bench_planner_vectorized.py`` is the gate).

The engine is deterministic: all randomness lives inside seeded workload
profiles, and bus dispatch order is fixed by (priority, subscription
order).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultConfig, FaultInjector
from repro.kernel.actuation import Actuator
from repro.kernel.bus import (
    AppFinished,
    EventBus,
    HeartbeatEmitted,
    LATE,
    PowerSample,
    StateApplied,
    TickStart,
)
from repro.platform.cluster import BIG, LITTLE
from repro.platform.dvfs import DvfsController
from repro.platform.machine import Machine
from repro.platform.power import CoreActivity, PowerModel
from repro.platform.sensor import PowerSensor
from repro.platform.spec import PlatformSpec
from repro.sched.base import Scheduler
from repro.sched.gts import GtsScheduler
from repro.sim.clock import SimClock
from repro.sim.controller import Controller
from repro.sim.process import SimApp
from repro.sim.thread import LOAD_TIME_CONSTANT_S
from repro.sim.tracing import TracePoint, TraceRecorder

#: Default tick length (10 ms), far below the 263.8 ms sensor period.
DEFAULT_TICK_S = 0.01

#: Hard cap on ticks per run — guards against runaway configurations.
MAX_TICKS = 2_000_000

#: Valid execution profiles.
PROFILES = ("fast", "legacy", "vector")


class Simulation:
    """One simulated machine running one or more applications."""

    def __init__(
        self,
        spec: PlatformSpec,
        tick_s: float = DEFAULT_TICK_S,
        scheduler: Optional[Scheduler] = None,
        profile: str = "fast",
        faults: Optional[FaultConfig] = None,
    ):
        if tick_s <= 0:
            raise ConfigurationError("tick must be positive")
        if profile not in PROFILES:
            raise ConfigurationError(
                f"unknown profile {profile!r}; valid: {PROFILES}"
            )
        self.spec = spec
        self.tick_s = tick_s
        self.profile = profile
        self.machine = Machine(spec)
        self.dvfs = DvfsController(self.machine)
        self.power_model = PowerModel(spec)
        self.sensor = PowerSensor()
        self.clock = SimClock()
        self.scheduler: Scheduler = scheduler or GtsScheduler(
            cache_partitions=(profile != "legacy")
        )
        # Batch-plan hook: under the vector profile, managers route
        # their Plan stage through this service (shared batch metering
        # and multi-app plan_many batches); otherwise absent and the
        # scalar planner runs untouched.
        self.plan_service: Optional[object] = None
        if profile == "vector":
            from repro.kernel.batchplan import PlanService

            self.plan_service = PlanService()
        self.apps: List[SimApp] = []
        self._apps_by_name: Dict[str, SimApp] = {}
        self.controllers: List[Controller] = []
        self.bus = EventBus()
        # Fault injection: with no config (or every rate zero) nothing is
        # installed and the whole stack is bit-identical to a build
        # without the fault layer.
        self.faults = faults
        self.fault_injector: Optional[FaultInjector] = None
        self._lifecycle_enabled = False
        if faults is not None and faults.enabled:
            self.fault_injector = FaultInjector(faults, self.bus)
            if faults.sensor_enabled:
                self.sensor.fault_hook = self.fault_injector.filter_power
            if faults.dvfs_failure_rate > 0:
                self.dvfs.write_filter = self.fault_injector.dvfs_write_ok
            self._lifecycle_enabled = faults.lifecycle_enabled
        #: Apps in a runaway episode (re-escape their pinning each tick).
        self._runaway_apps: List[SimApp] = []
        self.actuator = Actuator(self, faults=self.fault_injector)
        self.trace = TraceRecorder()
        #: Per-core utilization of the most recent tick (0..1), the
        #: signal utilization-driven governors (ondemand) consume.
        self.last_core_utilization: Dict[int, float] = {}
        self._started = False
        self._ticked = False
        self._finished: Set[str] = set()
        #: app name -> (big, little) from the latest ``StateApplied``.
        self._trace_allocations: Dict[str, Tuple[int, int]] = {}
        self.bus.subscribe(StateApplied, self._trace_on_state_applied)
        # LATE: the trace must observe the allocation managers applied
        # *during* the heartbeat it records.
        self.bus.subscribe(
            HeartbeatEmitted, self._trace_on_heartbeat, priority=LATE
        )
        # Lazily-built fast-profile runtime index (first step).
        self._slots: Optional[List] = None
        # Heartbeat delivery faults: beats whose *delivery* to the bus
        # is stalled or jittered, keyed by the tick they mature on.  The
        # app's log is written at emission time regardless — the fault
        # corrupts the observation channel, not the ground truth.
        self._tick_index = 0
        self._delayed_heartbeats: List[Tuple[int, str, SimApp, object]] = []

    # -- setup ---------------------------------------------------------------

    def add_app(self, app: SimApp) -> SimApp:
        """Register an application before the run starts."""
        if self._started:
            raise SimulationError("cannot add apps after the run started")
        if app.name in self._apps_by_name:
            raise ConfigurationError(f"duplicate app name {app.name!r}")
        self.apps.append(app)
        self._apps_by_name[app.name] = app
        return app

    def add_controller(self, controller: Controller) -> Controller:
        """Register a runtime-system controller (attaches it to the bus)."""
        if self._started:
            raise SimulationError("cannot add controllers after the run started")
        self.controllers.append(controller)
        controller.attach(self)
        return controller

    def app(self, name: str) -> SimApp:
        """Look up a registered application by name (O(1))."""
        try:
            return self._apps_by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown app {name!r}") from None

    # -- run loop --------------------------------------------------------------

    def run(self, until_s: Optional[float] = None) -> float:
        """Run until every app finishes (or ``until_s`` elapses).

        Returns the simulated time at exit.  Apps that never finish
        (e.g. the microbenchmark) require ``until_s``.
        """
        if not self.apps:
            raise SimulationError("no applications registered")
        if until_s is None and any(
            app.model.total_heartbeats() == 0 for app in self.apps
        ):
            raise SimulationError(
                "endless workloads present: run() needs an explicit until_s"
            )
        if not self._started:
            self._started = True
            for controller in self.controllers:
                controller.on_start(self)
        ticks = 0
        while not self._all_done():
            if until_s is not None and self.clock.now_s >= until_s - 1e-9:
                break
            self.step()
            ticks += 1
            if ticks > MAX_TICKS:
                raise SimulationError(
                    f"run exceeded {MAX_TICKS} ticks "
                    f"({self.clock.now_s:.0f}s simulated) — likely stalled"
                )
        return self.clock.now_s

    def step(self) -> None:
        """Advance the simulation by exactly one tick."""
        if not self._started:
            self._started = True
            for controller in self.controllers:
                controller.on_start(self)
        dt = self.tick_s
        bus = self.bus
        if self._delayed_heartbeats:
            self._flush_delayed_heartbeats()
        if self._lifecycle_enabled:
            self._inject_lifecycle(dt)
        # Hot path: probe the handler table directly rather than
        # through subscriber_count() — three calls per tick add up.
        handlers = bus._handlers
        if handlers.get(TickStart):
            bus.publish(TickStart(time_s=self.clock.now_s))

        placement = self.scheduler.place(self)
        if self.profile != "legacy":
            if self._slots is None:
                self._build_runtime_index()
            touched = self._execute_tick_fast(placement, dt)
            self._integrate_power_fast(touched, dt)
            self._publish_finished(dt)
            decay = self._load_decay
            gain = self._load_gain
            demand = self._arr_demand
            for slot, thread in enumerate(self._slots):
                thread.load = thread.load * decay + demand[slot] * gain
        else:
            busy, busy_activity, demand_map = self._execute_tick(placement, dt)
            self._integrate_power(busy, busy_activity, dt)
            self._publish_finished(dt)
            for app in self.apps:
                for thread in app.threads:
                    thread.update_load(
                        demand_map.get((app.name, thread.local_index), 0.0), dt
                    )

        self.clock.advance(dt)
        self._ticked = True
        self._tick_index += 1

    # -- internals ----------------------------------------------------------------

    def _deliver_heartbeat(self, app: SimApp, heartbeat) -> None:
        """Publish a heartbeat to the bus, possibly stalled or jittered.

        The heartbeat is already in the app's log (ground truth); a
        delivery fault only delays when subscribers *observe* it.
        """
        injector = self.fault_injector
        if injector is not None:
            fault = injector.heartbeat_fault(app.name, heartbeat.time_s)
            if fault is not None:
                kind, delay_ticks = fault
                injector.note_injected(
                    kind,
                    app.name,
                    heartbeat.time_s,
                    f"heartbeat {heartbeat.index} delayed {delay_ticks} ticks",
                )
                self._delayed_heartbeats.append(
                    (self._tick_index + delay_ticks, kind, app, heartbeat)
                )
                return
        self.bus.publish(HeartbeatEmitted(app=app, heartbeat=heartbeat))

    def _flush_delayed_heartbeats(self) -> None:
        """Deliver stalled/jittered heartbeats whose delay has matured.

        Queue order is emission order, so matured beats reach the bus in
        the order they were produced.
        """
        injector = self.fault_injector
        pending: List[Tuple[int, str, SimApp, object]] = []
        for due_tick, kind, app, heartbeat in self._delayed_heartbeats:
            if due_tick > self._tick_index:
                pending.append((due_tick, kind, app, heartbeat))
                continue
            if injector is not None:
                injector.note_recovered(
                    kind,
                    app.name,
                    self.clock.now_s,
                    f"heartbeat {heartbeat.index} delivered",
                )
            self.bus.publish(HeartbeatEmitted(app=app, heartbeat=heartbeat))
        self._delayed_heartbeats = pending

    def _all_done(self) -> bool:
        # Once a tick has run, _publish_finished has scanned every app,
        # so the finished set is authoritative; before the first tick an
        # app may start out already-done, so scan.
        if self._ticked:
            return len(self._finished) == len(self.apps)
        finished = self._finished
        return all(app.name in finished or app.is_done() for app in self.apps)

    def _publish_finished(self, dt: float) -> None:
        """Track and announce apps that completed their work this tick."""
        end_time = self.clock.now_s + dt
        announce = bool(self.bus._handlers.get(AppFinished))
        for app in self.apps:
            if app.name not in self._finished and app.is_done():
                self._finished.add(app.name)
                if announce:
                    self.bus.publish(
                        AppFinished(app_name=app.name, time_s=end_time)
                    )

    # -- lifecycle faults / supervision -------------------------------------------

    def retire_app(self, name: str) -> None:
        """Permanently remove an app from execution (supervision eviction).

        The app's threads are never scheduled again and the run can
        terminate without it; its unconsumed work units stay unconsumed.
        No ``AppFinished`` is published — the app did not finish, and
        the supervisor announces the eviction itself.
        """
        app = self.app(name)
        app.halted = True
        self._finished.add(name)

    def _inject_lifecycle(self, dt: float) -> None:
        """Roll and apply lifecycle faults for the tick about to run."""
        injector = self.fault_injector
        now = self.clock.now_s
        alive = [
            app.name
            for app in self.apps
            if not app.halted and app.name not in self._finished
        ]
        for kind, target in injector.lifecycle_events(now, dt, alive):
            self._apply_lifecycle(kind, target, now)
        # Runaway apps escape whatever pinning a manager re-applied
        # since the last tick: clear it again before placement.
        for app in self._runaway_apps:
            if app.halted:
                continue
            if app.cpuset is not None:
                app.set_cpuset(None)
            for thread in app.threads:
                if thread.affinity is not None:
                    thread.set_affinity(None)

    def _apply_lifecycle(self, kind: str, target: str, now_s: float) -> None:
        injector = self.fault_injector
        if kind == "controller_restart":
            injector.note_injected(kind, "controller", now_s, "crash+restart")
            for controller in self.controllers:
                restart = getattr(controller, "simulate_restart", None)
                if restart is not None:
                    restart(self)
            return
        app = self._resolve_lifecycle_target(target)
        if app is None:
            return
        if kind == "app_crash":
            app.halted = True
            self._finished.add(app.name)
            injector.note_injected(
                kind, app.name, now_s, "abrupt exit with work left"
            )
            if self.bus._handlers.get(AppFinished):
                self.bus.publish(
                    AppFinished(app_name=app.name, time_s=now_s)
                )
        elif kind == "app_hang":
            app.halted = True
            injector.note_injected(
                kind, app.name, now_s, "stopped emitting heartbeats"
            )
        elif kind == "app_runaway":
            if not app.runaway:
                app.runaway = True
                app.speed_factor = self.faults.app_runaway_speed_factor
                self._runaway_apps.append(app)
                injector.note_injected(
                    kind,
                    app.name,
                    now_s,
                    f"x{app.speed_factor:g} uncontrolled",
                )

    def _resolve_lifecycle_target(self, target: str) -> Optional[SimApp]:
        """``"*"`` hits the first live app; named targets must be live."""
        if target == "*":
            for app in self.apps:
                if not app.halted and app.name not in self._finished:
                    return app
            return None
        app = self._apps_by_name.get(target)
        if app is None or app.halted or app.name in self._finished:
            return None
        return app

    #: Maximum grant/advance rounds per tick.  Round 1 is the fair share;
    #: later rounds redistribute core time a blocking thread left unused
    #: (a real scheduler switches to the runnable co-tenant immediately).
    GRANT_ROUNDS = 3

    # -- fast profile -------------------------------------------------------------

    def _build_runtime_index(self) -> None:
        """Precompute the flat thread/core indexes the hot loop uses.

        Apps and threads are fixed once the run starts, so each thread
        gets a stable *slot* and per-slot/per-core arrays replace the
        per-tick dict churn of the legacy profile.
        """
        slots: List = []
        slot_app: List[SimApp] = []
        slot_base: Dict[str, int] = {}
        for app in self.apps:
            slot_base[app.name] = len(slots)
            for thread in app.threads:
                thread._slot = len(slots)
                slots.append(thread)
                slot_app.append(app)
        self._slots = slots
        self._slot_app = slot_app
        self._slot_base = slot_base
        n = len(slots)
        self._zero_slots = [0.0] * n
        self._false_slots = [False] * n
        self._arr_thread_busy = [0.0] * n
        self._arr_thread_granted = [0.0] * n
        self._arr_blocked = [False] * n
        self._arr_demand = [0.0] * n
        self._arr_meta_share = [0.0] * n
        self._arr_meta_speed = [0.0] * n
        self._arr_meta_core = [0] * n
        n_cores = (max(self.machine.cores) + 1) if self.machine.cores else 1
        self._n_core_slots = n_cores
        self._zero_cores = [0.0] * n_cores
        self._arr_core_busy = [0.0] * n_cores
        self._arr_core_ba = [0.0] * n_cores
        self._arr_remaining = [0.0] * n_cores
        self._cluster_of_core: Dict[int, object] = {}
        for cluster in self.spec.clusters:
            for core_id in cluster.core_ids:
                self._cluster_of_core[core_id] = cluster
        # dt is always tick_s, so the load-tracking decay is a constant.
        self._load_decay = math.exp(-self.tick_s / LOAD_TIME_CONSTANT_S)
        self._load_gain = 1.0 - self._load_decay

    def _execute_tick_fast(
        self, placement: Dict[int, List], dt: float
    ) -> List[int]:
        """Array-based grant/advance loop (see :meth:`_execute_tick`).

        Accumulates into the preallocated per-slot and per-core arrays in
        exactly the legacy accumulation order, so every float is
        bit-identical to the legacy profile.  Returns the ids of cores
        that had threads placed on them (the legacy ``busy`` dict keys).
        """
        slots = self._slots
        thread_busy = self._arr_thread_busy
        thread_granted = self._arr_thread_granted
        blocked = self._arr_blocked
        demand = self._arr_demand
        # Slice-assign from preallocated zero templates: a C-level copy
        # instead of a Python loop.
        thread_busy[:] = self._zero_slots
        thread_granted[:] = self._zero_slots
        blocked[:] = self._false_slots
        demand[:] = self._zero_slots
        core_busy = self._arr_core_busy
        core_ba = self._arr_core_ba
        remaining = self._arr_remaining
        core_busy[:] = self._zero_cores
        core_ba[:] = self._zero_cores
        end_time = self.clock.now_s + dt
        touched: List[int] = []
        hungry: Dict[int, List] = {}
        for core_id, threads in placement.items():
            if threads:
                remaining[core_id] = dt
                # The placement dict is built fresh each tick and never
                # mutated, so its lists can be adopted without copying
                # (rounds *replace* hungry entries, never edit them).
                hungry[core_id] = threads
                touched.append(core_id)

        meta_share = self._arr_meta_share
        meta_speed = self._arr_meta_speed
        meta_core = self._arr_meta_core
        slot_app = self._slot_app
        slot_base = self._slot_base
        cluster_of_core = self._cluster_of_core
        machine = self.machine
        bus = self.bus

        # Reading the machine's live frequency table is safe: DVFS only
        # changes from heartbeat handlers, which run in the advance
        # phase — never between the grant reads of one round.
        freqs = machine._freqs
        for _ in range(self.GRANT_ROUNDS):
            # One thread-speed evaluation per (app, cluster) per round
            # (legacy evaluates per grant, but neither the frequency nor
            # the model phase can change inside the grant phase).
            speed_memo: Dict[str, Dict[str, float]] = {}
            grants: Dict[str, Dict[int, float]] = {}
            for core_id, threads in hungry.items():
                if not threads or remaining[core_id] <= 1e-9:
                    continue
                cluster = cluster_of_core[core_id]
                cname = cluster.name
                freq = freqs[cname]
                cluster_memo = speed_memo.get(cname)
                if cluster_memo is None:
                    cluster_memo = speed_memo[cname] = {}
                share_s = remaining[core_id] / len(threads)
                for thread in threads:
                    slot = thread._slot
                    app = slot_app[slot]
                    speed = cluster_memo.get(app.name)
                    if speed is None:
                        speed = app.model.thread_speed(
                            cname, cluster.core_type, freq
                        )
                        # Gated on != 1.0 so fault-free runs never
                        # multiply (bit-identity with the pre-fault build).
                        if app.speed_factor != 1.0:
                            speed *= app.speed_factor
                        cluster_memo[app.name] = speed
                    app_grants = grants.get(app.name)
                    if app_grants is None:
                        app_grants = grants[app.name] = {}
                    app_grants[thread.local_index] = share_s * speed
                    meta_share[slot] = share_s
                    meta_speed[slot] = speed
                    meta_core[slot] = core_id
            if not grants:
                break

            satisfied: Set[int] = set()
            for app in self.apps:
                app_grants = grants.get(app.name)
                if not app_grants:
                    continue
                result = app.model.advance(app_grants)
                base = slot_base[app.name]
                consumed_map = result.consumed
                activity_factor = app.model.traits.activity_factor
                for local_index, granted in app_grants.items():
                    consumed = consumed_map.get(local_index, 0.0)
                    slot = base + local_index
                    share_s = meta_share[slot]
                    speed = meta_speed[slot]
                    core_id = meta_core[slot]
                    if speed > 0:
                        used = consumed / speed
                        busy_s = share_s if share_s <= used else used
                    else:
                        busy_s = 0.0
                    core_busy[core_id] += busy_s
                    core_ba[core_id] += busy_s * activity_factor
                    thread_busy[slot] += busy_s
                    thread_granted[slot] += share_s
                    remaining[core_id] -= busy_s
                    if consumed < granted * 0.999:
                        # The thread blocked (barrier, empty/full queue):
                        # it takes no further time this tick.
                        satisfied.add(slot)
                        blocked[slot] = True
                for i in range(result.heartbeats):
                    tag = (
                        result.heartbeat_tags[i]
                        if i < len(result.heartbeat_tags)
                        else ""
                    )
                    heartbeat = app.log.emit(end_time, tag)
                    self._deliver_heartbeat(app, heartbeat)

            still_hungry = False
            if satisfied:
                for core_id in list(hungry):
                    hungry[core_id] = [
                        t for t in hungry[core_id] if t._slot not in satisfied
                    ]
                    if hungry[core_id] and remaining[core_id] > dt * 0.01:
                        still_hungry = True
            else:
                threshold = dt * 0.01
                for core_id, threads in hungry.items():
                    if threads and remaining[core_id] > threshold:
                        still_hungry = True
                        break
            if not still_hungry:
                break

        for slot in range(len(slots)):
            granted_s = thread_granted[slot]
            if granted_s > 0.0:
                if blocked[slot]:
                    # Blocked threads were runnable only while they used CPU.
                    used = thread_busy[slot] / granted_s
                    demand[slot] = 1.0 if 1.0 <= used else used
                else:
                    demand[slot] = 1.0  # hungry through every round: runnable
        return touched

    def _integrate_power_fast(self, touched: List[int], dt: float) -> None:
        core_busy = self._arr_core_busy
        self.last_core_utilization = {
            core_id: util if (util := core_busy[core_id] / dt) < 1.0 else 1.0
            for core_id in touched
        }
        watts = self.power_model.platform_power_arrays(
            self.machine, core_busy, self._arr_core_ba, dt
        )
        self.sensor.record(dt, watts)
        if self.bus.subscriber_count(PowerSample):
            self.bus.publish(
                PowerSample(time_s=self.clock.now_s + dt, watts=watts)
            )

    # -- legacy profile -----------------------------------------------------------

    def _execute_tick(
        self, placement: Dict[int, List], dt: float
    ) -> Tuple[Dict[int, float], Dict[int, float], Dict[Tuple[str, int], float]]:
        """Grant core time, advance workloads, and account busy time.

        Returns per-core busy seconds, per-core busy·activity sums for
        the power model, and per-thread *demand* (runnable fraction of
        the tick) for load tracking: a thread that stayed hungry through
        every round was runnable the whole tick (demand 1); a thread that
        blocked shows the fraction of its granted time it actually used.
        """
        busy: Dict[int, float] = {}
        busy_activity: Dict[int, float] = {}
        thread_busy: Dict[Tuple[str, int], float] = {}
        thread_granted: Dict[Tuple[str, int], float] = {}
        blocked: set = set()
        end_time = self.clock.now_s + dt
        remaining: Dict[int, float] = {}  # core id -> unclaimed seconds
        hungry: Dict[int, List] = {}  # core id -> threads still consuming
        for core_id, threads in placement.items():
            if threads:
                remaining[core_id] = dt
                hungry[core_id] = list(threads)

        for _ in range(self.GRANT_ROUNDS):
            grants: Dict[str, Dict[int, float]] = {}
            meta: Dict[Tuple[str, int], Tuple[float, float, int]] = {}
            for core_id, threads in hungry.items():
                if not threads or remaining[core_id] <= 1e-9:
                    continue
                cluster = self.machine.cluster_of_core(core_id)
                freq = self.machine.freq_mhz(cluster.name)
                share_s = remaining[core_id] / len(threads)
                for thread in threads:
                    app = self.app(thread.app_name)
                    speed = app.model.thread_speed(
                        cluster.name, cluster.core_type, freq
                    )
                    if app.speed_factor != 1.0:
                        speed *= app.speed_factor
                    grants.setdefault(app.name, {})[thread.local_index] = (
                        share_s * speed
                    )
                    meta[(app.name, thread.local_index)] = (
                        share_s,
                        speed,
                        core_id,
                    )
            if not grants:
                break

            satisfied: set = set()
            for app in self.apps:
                app_grants = grants.get(app.name)
                if not app_grants:
                    continue
                result = app.model.advance(app_grants)
                for local_index, granted in app_grants.items():
                    consumed = result.consumed.get(local_index, 0.0)
                    share_s, speed, core_id = meta[(app.name, local_index)]
                    busy_s = min(share_s, consumed / speed) if speed > 0 else 0.0
                    key = (app.name, local_index)
                    busy[core_id] = busy.get(core_id, 0.0) + busy_s
                    busy_activity[core_id] = (
                        busy_activity.get(core_id, 0.0)
                        + busy_s * app.model.traits.activity_factor
                    )
                    thread_busy[key] = thread_busy.get(key, 0.0) + busy_s
                    thread_granted[key] = thread_granted.get(key, 0.0) + share_s
                    remaining[core_id] -= busy_s
                    if consumed < granted * 0.999:
                        # The thread blocked (barrier, empty/full queue):
                        # it takes no further time this tick.
                        satisfied.add(key)
                        blocked.add(key)
                for i in range(result.heartbeats):
                    tag = (
                        result.heartbeat_tags[i]
                        if i < len(result.heartbeat_tags)
                        else ""
                    )
                    heartbeat = app.log.emit(end_time, tag)
                    self._deliver_heartbeat(app, heartbeat)

            still_hungry = False
            for core_id in list(hungry):
                hungry[core_id] = [
                    t
                    for t in hungry[core_id]
                    if (t.app_name, t.local_index) not in satisfied
                ]
                if hungry[core_id] and remaining[core_id] > dt * 0.01:
                    still_hungry = True
            if not still_hungry:
                break

        demand: Dict[Tuple[str, int], float] = {}
        for key, granted_s in thread_granted.items():
            if key in blocked and granted_s > 0:
                # Blocked threads were runnable only while they used CPU.
                demand[key] = min(1.0, thread_busy.get(key, 0.0) / granted_s)
            else:
                demand[key] = 1.0  # hungry through every round: runnable
        return busy, busy_activity, demand

    def _integrate_power(
        self,
        busy: Dict[int, float],
        busy_activity: Dict[int, float],
        dt: float,
    ) -> None:
        self.last_core_utilization = {
            core_id: min(1.0, busy_s / dt) for core_id, busy_s in busy.items()
        }
        activities: Dict[int, CoreActivity] = {}
        for core_id, busy_s in busy.items():
            utilization = min(1.0, busy_s / dt)
            if busy_s > 0:
                activity = min(1.0, busy_activity[core_id] / busy_s)
            else:
                activity = 1.0
            activities[core_id] = CoreActivity(
                utilization=utilization, activity_factor=activity
            )
        watts = self.power_model.platform_power(self.machine, activities)
        self.sensor.record(dt, watts)
        if self.bus.subscriber_count(PowerSample):
            self.bus.publish(
                PowerSample(time_s=self.clock.now_s + dt, watts=watts)
            )

    # -- trace subscription -------------------------------------------------------

    def _trace_on_state_applied(self, event: StateApplied) -> None:
        self._trace_allocations[event.app_name] = (
            event.big_cores,
            event.little_cores,
        )

    def _trace_on_heartbeat(self, event: HeartbeatEmitted) -> None:
        app = event.app
        allocation = self._trace_allocations.get(app.name)
        if allocation is None:
            for controller in self.controllers:
                allocation = controller.current_allocation(app.name)
                if allocation is not None:
                    break
        if allocation is None:
            cores = app.cores_in_use()
            n_big = sum(1 for c in cores if self.spec.big.contains_core(c))
            allocation = (n_big, len(cores) - n_big)
        heartbeat = event.heartbeat
        self.trace.record(
            app.name,
            TracePoint(
                time_s=heartbeat.time_s,
                hb_index=heartbeat.index,
                rate=app.monitor.current_rate(),
                big_cores=allocation[0],
                little_cores=allocation[1],
                big_freq_mhz=self.machine.freq_mhz(BIG),
                little_freq_mhz=self.machine.freq_mhz(LITTLE),
            ),
        )
