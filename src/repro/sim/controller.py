"""Controller protocol — how runtime systems plug into the engine.

HARS, MP-HARS, CONS-I and the static baselines are all *controllers*: the
engine calls them every tick and at every heartbeat, and they act on the
platform through the DVFS controller and thread affinities — the same
control surface a user-level runtime has on the real board.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.heartbeats.record import Heartbeat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class Controller:
    """Base controller; all hooks are optional no-ops."""

    def on_start(self, sim: "Simulation") -> None:
        """Called once before the first tick (initial state setup)."""

    def on_tick(self, sim: "Simulation") -> None:
        """Called at the start of every tick."""

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        """Called after an application emits a heartbeat."""

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        """``(big cores, little cores)`` this controller has allocated to
        the app, or ``None`` if it does not manage allocations.  Used by
        the trace recorder for the behaviour graphs."""
        return None

    def cpu_overhead_seconds(self) -> float:
        """Modelled CPU time this controller has consumed (Fig 5.3b)."""
        return 0.0
