"""Controller protocol — how runtime systems plug into the engine.

HARS, MP-HARS, CONS-I and the static baselines are all *controllers*:
they attach to the engine's kernel event bus, observe ticks and
heartbeats through it, and act on the platform through the actuation
façade — the same control surface a user-level runtime has on the real
board.

The classic ``on_tick``/``on_heartbeat`` hook methods remain the
programming model (and the public API tests exercise); the base
:meth:`Controller.attach` bridges whichever hooks a subclass overrides
onto :class:`~repro.kernel.bus.TickStart` /
:class:`~repro.kernel.bus.HeartbeatEmitted` subscriptions.  Controllers
needing more (e.g. MP-HARS reclaiming partitions on
:class:`~repro.kernel.bus.AppFinished`) override ``attach`` and add
their own subscriptions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.heartbeats.record import Heartbeat
from repro.kernel.bus import HeartbeatEmitted, TickStart

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation
    from repro.sim.process import SimApp


class Controller:
    """Base controller; all hooks are optional no-ops."""

    def attach(self, sim: "Simulation") -> None:
        """Subscribe this controller's hooks on the simulation's bus.

        Only hooks a subclass actually overrides are bridged, so a
        frequency governor costs nothing per heartbeat and a heartbeat
        manager costs nothing per tick.
        """
        cls = type(self)
        if cls.on_tick is not Controller.on_tick:
            sim.bus.subscribe(
                TickStart, lambda event: self.on_tick(sim)
            )
        if cls.on_heartbeat is not Controller.on_heartbeat:
            sim.bus.subscribe(
                HeartbeatEmitted,
                lambda event: self.on_heartbeat(
                    sim, event.app, event.heartbeat
                ),
            )

    def on_start(self, sim: "Simulation") -> None:
        """Called once before the first tick (initial state setup)."""

    def on_tick(self, sim: "Simulation") -> None:
        """Called at the start of every tick."""

    def on_heartbeat(
        self, sim: "Simulation", app: "SimApp", heartbeat: Heartbeat
    ) -> None:
        """Called after an application emits a heartbeat."""

    def current_allocation(self, app_name: str) -> Optional[Tuple[int, int]]:
        """``(big cores, little cores)`` this controller has allocated to
        the app, or ``None`` if it does not manage allocations.  Used by
        the trace recorder for the behaviour graphs."""
        return None

    def cpu_overhead_seconds(self) -> float:
        """Modelled CPU time this controller has consumed (Fig 5.3b)."""
        return 0.0
