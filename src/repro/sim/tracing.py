"""Run tracing: the data behind the paper's behaviour graphs.

Figures 5.5–5.7 plot, per application and heartbeat index: the heartbeat
rate (HPS), allocated big/little core counts, both cluster frequencies,
and the target window.  The :class:`TraceRecorder` collects exactly those
rows as the simulation runs; the experiment harness renders them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TracePoint:
    """One behaviour-graph row for one application."""

    time_s: float
    hb_index: int
    rate: Optional[float]  # windowed HPS; None until the window fills
    big_cores: int
    little_cores: int
    big_freq_mhz: int
    little_freq_mhz: int


#: The behaviour-graph value columns a :class:`TracePoint` carries
#: (``time_s``/``hb_index`` are the row keys, not columns).
TRACE_COLUMNS: Tuple[str, ...] = (
    "rate",
    "big_cores",
    "little_cores",
    "big_freq_mhz",
    "little_freq_mhz",
)


class TraceRecorder:
    """Per-application time series of :class:`TracePoint` rows."""

    def __init__(self) -> None:
        self._points: Dict[str, List[TracePoint]] = {}

    @staticmethod
    def columns() -> Tuple[str, ...]:
        """The column names :meth:`series` accepts, in schema order.

        The telemetry exporters iterate this instead of hard-coding the
        row layout.
        """
        return TRACE_COLUMNS

    def record(self, app_name: str, point: TracePoint) -> None:
        """Append one row for an application."""
        self._points.setdefault(app_name, []).append(point)

    def points(self, app_name: str) -> Tuple[TracePoint, ...]:
        """All rows for an application, oldest first."""
        return tuple(self._points.get(app_name, ()))

    @property
    def app_names(self) -> Tuple[str, ...]:
        return tuple(self._points)

    def series(self, app_name: str, column: str) -> List[Tuple[int, float]]:
        """``(hb_index, value)`` pairs for one behaviour-graph column.

        ``column`` is one of :meth:`columns`; anything else raises
        :class:`~repro.errors.ConfigurationError` up front instead of an
        ``AttributeError`` mid-iteration.
        """
        if column not in TRACE_COLUMNS:
            raise ConfigurationError(
                f"unknown trace column {column!r}; valid: {TRACE_COLUMNS}"
            )
        out: List[Tuple[int, float]] = []
        for point in self._points.get(app_name, ()):
            value = getattr(point, column)
            if value is None:
                continue
            out.append((point.hb_index, float(value)))
        return out

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._points.values())
