"""Discrete-time HMP simulation engine."""

from repro.sim.clock import SimClock
from repro.sim.controller import Controller
from repro.sim.engine import DEFAULT_TICK_S, MAX_TICKS, Simulation
from repro.sim.process import SimApp
from repro.sim.thread import INITIAL_LOAD, LOAD_TIME_CONSTANT_S, SimThread
from repro.sim.tracing import TracePoint, TraceRecorder

__all__ = [
    "Controller",
    "DEFAULT_TICK_S",
    "INITIAL_LOAD",
    "LOAD_TIME_CONSTANT_S",
    "MAX_TICKS",
    "SimApp",
    "SimClock",
    "SimThread",
    "Simulation",
    "TracePoint",
    "TraceRecorder",
]
