#!/usr/bin/env python
"""Pipeline scheduling: the chunk vs interleaving trade-off (Figure 3.2).

Ferret is a six-stage pipeline.  When the system state mixes big and
little cores, the chunk-based scheduler pins consecutive thread IDs to
one cluster, which can drop an entire heavy stage onto the little
cluster and throttle the whole pipeline.  The interleaving scheduler
spreads each stage across both clusters and removes the imbalance
(Section 3.1.3 of the paper).

This example holds a mixed state fixed (2 big @1.6 GHz + 4 little
@1.2 GHz) and measures ferret's throughput under both schedulers.

Run with:  python examples/pipeline_scheduling.py
"""

from repro.core import (
    HARS_E,
    HARS_EI,
    HarsManager,
    PerformanceEstimator,
    SystemState,
    calibrate,
)
from repro.heartbeats import PerformanceTarget
from repro.platform import odroid_xu3
from repro.sim import SimApp, Simulation
from repro.workloads import make_benchmark


def throughput_with(spec, policy, state):
    sim = Simulation(spec)
    model = make_benchmark("ferret", n_units=150)
    # A wide-open target window keeps the manager pinned at `state`.
    app = sim.add_app(
        SimApp("ferret", model, PerformanceTarget(0.01, 10.0, 20.0))
    )
    sim.add_controller(
        HarsManager(
            "ferret",
            policy,
            PerformanceEstimator(),
            calibrate(spec),
            initial_state=state,
        )
    )
    sim.run(until_s=600)
    return app.log.overall_rate(), sim.sensor.average_power_w()


def main():
    spec = odroid_xu3()
    state = SystemState(c_big=2, c_little=4, f_big_mhz=1600, f_little_mhz=1200)
    print(f"Fixed system state: {state.describe()}")
    model = make_benchmark("ferret", n_units=1)
    print(f"ferret: {len(model.stages)} stages, {model.n_threads} threads "
          f"({', '.join(f'{s.name}×{s.n_threads}' for s in model.stages)})\n")

    chunk_rate, chunk_watts = throughput_with(spec, HARS_E, state)
    inter_rate, inter_watts = throughput_with(spec, HARS_EI, state)

    print("scheduler     items/s   watts")
    print(f"  chunk       {chunk_rate:7.2f}   {chunk_watts:5.2f}")
    print(f"  interleaved {inter_rate:7.2f}   {inter_watts:5.2f}")
    print(f"\nInterleaving lifts pipeline throughput by "
          f"{inter_rate / chunk_rate:.2f}x at the same state — the "
          "chunk layout had parked a heavy stage on the little cluster.")


if __name__ == "__main__":
    main()
