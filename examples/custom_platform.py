#!/usr/bin/env python
"""Using the library beyond the paper: a custom HMP platform.

HARS is not tied to the ODROID-XU3 preset — any two-cluster platform
description works.  This example builds a hypothetical octa-core with
two fast cores and six efficiency cores (a phone-style 2+6), calibrates
HARS against it, and adapts a bursty workload to a 40 % target.

Run with:  python examples/custom_platform.py
"""

from repro.core import HARS_E, HarsManager, PerformanceEstimator, calibrate
from repro.heartbeats import PerformanceTarget
from repro.platform import (
    BIG,
    LITTLE,
    ClusterSpec,
    PlatformSpec,
    cortex_a7,
    cortex_a15,
)
from repro.sim import SimApp, Simulation
from repro.workloads import (
    DataParallelWorkload,
    NoisyProfile,
    StepProfile,
    WorkloadTraits,
)


def phone_2plus6() -> PlatformSpec:
    """2 fast cores (to 2.0 GHz) + 6 efficiency cores (to 1.4 GHz)."""
    little = ClusterSpec(
        name=LITTLE,
        core_type=cortex_a7(freqs_mhz=tuple(range(600, 1401, 200))),
        n_cores=6,
        first_core_id=0,
        uncore_power_w=0.06,
    )
    big = ClusterSpec(
        name=BIG,
        core_type=cortex_a15(freqs_mhz=tuple(range(800, 2001, 200))),
        n_cores=2,
        first_core_id=6,
        uncore_power_w=0.10,
    )
    return PlatformSpec(name="phone-2plus6", big=big, little=little)


def bursty_workload() -> DataParallelWorkload:
    """A camera-pipeline-like workload: calm phases with bursts."""
    traits = WorkloadTraits(
        name="camera-pipeline",
        big_little_ratio=1.7,
        mem_intensity=0.3,
        activity_factor=0.85,
    )
    profile = NoisyProfile(
        StepProfile(
            segments=((40, 3.0), (20, 6.5), (40, 3.0), (20, 5.5), (30, 3.0))
        ),
        sigma=0.06,
    )
    return DataParallelWorkload(traits, n_threads=8, profile=profile, n_units=150)


def main():
    spec = phone_2plus6()
    print(f"Platform: {spec.name}, state space of "
          f"{spec.state_space_size()} system states")
    power_estimator = calibrate(spec)

    # Probe the max rate, then target 40 % of it.
    sim = Simulation(spec)
    app = sim.add_app(
        SimApp("camera", bursty_workload(), PerformanceTarget(1.0, 1.0, 1.0))
    )
    sim.run(until_s=600)
    max_rate = app.log.overall_rate()
    target = PerformanceTarget.fraction_of(max_rate, 0.4)
    print(f"max rate {max_rate:.2f} HPS → target "
          f"[{target.min_rate:.2f}, {target.max_rate:.2f}]")

    sim = Simulation(spec)
    app = sim.add_app(SimApp("camera", bursty_workload(), target))
    manager = HarsManager(
        "camera", HARS_E, PerformanceEstimator(), power_estimator
    )
    sim.add_controller(manager)
    sim.run(until_s=1500)

    print(f"norm perf {app.monitor.mean_normalized_performance():.3f}, "
          f"power {sim.sensor.average_power_w():.2f} W, "
          f"{manager.adaptations} adaptations "
          f"(final state {manager.state.describe()})")
    print("HARS tracked the bursts: rate samples",
          "  ".join(f"{i}:{r:.2f}" for i, r in app.log.rate_series(5)[::20]))


if __name__ == "__main__":
    main()
