#!/usr/bin/env python
"""MP-HARS: two applications, partitioned cores, shared frequencies.

Reproduces the paper's case 4 (bodytrack + fluidanimate) in miniature:
both applications start together with 50 % ± 5 % targets, and three
multi-application runtimes are compared —

* CONS-I     — the naive conservative model: shared cores, one global
               state, no estimation (Figure 5.5's pathology: once one
               app achieves, the other is stuck overperforming);
* MP-HARS-I  — per-app core partitions, incremental search;
* MP-HARS-E  — per-app core partitions, exhaustive search.

Run with:  python examples/multi_app_partitioning.py
"""

from repro.experiments import RunShape, run
from repro.experiments.report import sampled_series

CASE4 = [
    RunShape("bodytrack", n_units=120),
    RunShape("fluidanimate", n_units=200),
]


def main():
    results = {}
    for version in ("baseline", "cons-i", "mp-hars-i", "mp-hars-e"):
        outcome = run(version, CASE4)
        results[version] = outcome
        metrics = outcome.metrics
        perfs = "  ".join(
            f"{a.app_name}:{a.mean_normalized_perf:.2f}"
            for a in metrics.apps
        )
        print(
            f"{version:10s} perf/watt={metrics.perf_per_watt:.3f} "
            f"power={metrics.avg_power_w:.2f}W  norm-perf {perfs}"
        )

    base_pp = results["baseline"].metrics.perf_per_watt
    print("\nnormalized to baseline:")
    for version, outcome in results.items():
        print(f"  {version:10s} {outcome.metrics.perf_per_watt / base_pp:.2f}x")

    # Behaviour trace (the Figures 5.5–5.7 view): fluidanimate's rate
    # under CONS-I vs MP-HARS-E.
    for version in ("cons-i", "mp-hars-e"):
        trace = results[version].trace
        fl_name = next(n for n in trace.app_names if "fluid" in n)
        series = trace.series(fl_name, "rate")
        print(f"\n{version}: fluidanimate HPS vs heartbeat index")
        print("  " + sampled_series(series, max_points=15))
        fl = results[version].metrics.app(fl_name)
        print(f"  target window [{fl.target_min:.2f}, {fl.target_max:.2f}]")


if __name__ == "__main__":
    main()
