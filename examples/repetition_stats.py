#!/usr/bin/env python
"""Seed-repetition statistics and JSON export.

The figures in the paper are single runs; this example shows the
harness's statistics layer: repeat a configuration across seeds, report
perf/watt as mean ± 95 % CI per version, check the HARS-vs-baseline gap
for statistical significance, and export everything as JSON.

Run with:  python examples/repetition_stats.py
"""

import json

from repro.experiments import (
    RunShape,
    compare_with_spread,
    significantly_better,
)

SEEDS = (0, 1, 2, 3)
SHAPE = RunShape("fluidanimate", n_units=120)
VERSIONS = ("baseline", "ondemand", "hars-i", "hars-e")


def main():
    print(f"fluidanimate × {len(SEEDS)} seeds, default target\n")
    spreads = compare_with_spread(VERSIONS, SHAPE, SEEDS)
    for version, spread in spreads.items():
        print(f"  {version:9s} perf/watt = {spread.summary()}")

    hars, base = spreads["hars-e"], spreads["baseline"]
    verdict = (
        "significant beyond both 95% intervals"
        if significantly_better(hars, base)
        else "NOT separable at 95%"
    )
    print(f"\nHARS-E vs baseline: {hars.mean / base.mean:.2f}x — {verdict}")

    payload = {
        "benchmark": SHAPE.benchmark,
        "seeds": list(SEEDS),
        "perf_per_watt": {
            version: {
                "mean": spread.mean,
                "std": spread.std,
                "ci95_half_width": spread.ci95_half_width,
            }
            for version, spread in spreads.items()
        },
    }
    with open("repetition_stats.json", "w") as handle:
        json.dump(payload, handle, indent=2)
    print("written: repetition_stats.json")


if __name__ == "__main__":
    main()
