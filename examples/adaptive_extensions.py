#!/usr/bin/env python
"""The discussion-section extensions in action (paper §3.1.4).

The paper's HARS mispredicts blackscholes: it assumes every benchmark's
big:little per-core ratio is r0 = 1.5, but blackscholes measures 1.0, so
HARS settles in suboptimal states (Section 5.1.2).  The paper proposes
updating the ratio online as future work — `repro.extensions` implements
it, along with Kalman-filtered rate prediction and a local-optimum
escape.

This example runs blackscholes twice — stock HARS-E and the adaptive
manager with ratio learning + Kalman prediction — and shows the learned
ratio converging to the truth.

Run with:  python examples/adaptive_extensions.py
"""

from repro.core import HARS_E, PerformanceEstimator, calibrate
from repro.experiments import RunShape, build_target
from repro.extensions import (
    AdaptiveHarsManager,
    OnlineRatioLearner,
    RatePredictor,
    StuckDetector,
)
from repro.platform import odroid_xu3
from repro.sim import SimApp, Simulation
from repro.workloads import benchmark_info, make_benchmark

N_UNITS = 200


def run(spec, target, learner=None, predictor=None):
    sim = Simulation(spec)
    model = make_benchmark("blackscholes", n_units=N_UNITS)
    app = sim.add_app(SimApp("blackscholes", model, target))
    manager = AdaptiveHarsManager(
        "blackscholes",
        HARS_E,
        PerformanceEstimator(),
        calibrate(spec),
        ratio_learner=learner,
        predictor=predictor,
        stuck_detector=StuckDetector(threshold=3),
    )
    sim.add_controller(manager)
    sim.run(until_s=N_UNITS / target.min_rate * 4 + 120)
    return app, sim, manager


def main():
    spec = odroid_xu3()
    true_ratio = benchmark_info("blackscholes").traits.big_little_ratio
    print(f"blackscholes true big:little ratio = {true_ratio} "
          "(HARS assumes 1.5)\n")
    shape = RunShape("blackscholes", n_units=N_UNITS)
    target = build_target(spec, shape)

    app_fixed, sim_fixed, _ = run(spec, target)
    learner = OnlineRatioLearner()
    app_learn, sim_learn, manager = run(
        spec, target, learner=learner, predictor=RatePredictor()
    )

    print("               norm perf  watts  perf/watt")
    for label, app, sim in (
        ("fixed r0=1.5", app_fixed, sim_fixed),
        ("learned r   ", app_learn, sim_learn),
    ):
        perf = app.monitor.mean_normalized_performance()
        watts = sim.sensor.average_power_w()
        print(f"  {label}  {perf:9.3f}  {watts:5.2f}  {perf / watts:9.3f}")
    print(f"\nlearned ratio estimate: {learner.ratio:.2f} "
          f"(truth {true_ratio}), from {len(learner)} observations; "
          f"{manager.escapes} local-optimum escapes fired")


if __name__ == "__main__":
    main()
