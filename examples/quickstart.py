#!/usr/bin/env python
"""Quickstart: run one self-adaptive application under HARS.

Builds the ODROID-XU3 platform model, calibrates HARS's power estimator
from the microbenchmark sweep, sets a 50 % ± 5 % performance target for
the swaptions benchmark, and lets the exhaustive HARS runtime (HARS-E)
drive the system state.  Compares the outcome against the Linux-GTS
baseline.

Run with:  python examples/quickstart.py
"""

from repro.baselines import BaselineController
from repro.core import HARS_E, HarsManager, PerformanceEstimator, calibrate
from repro.heartbeats import PerformanceTarget
from repro.platform import odroid_xu3
from repro.sim import SimApp, Simulation
from repro.workloads import make_benchmark


def run_version(spec, attach, target, n_units=150):
    """Run swaptions once; ``attach(sim, app)`` installs the controller."""
    sim = Simulation(spec)
    app = sim.add_app(SimApp("swaptions", make_benchmark("SW", n_units), target))
    attach(sim, app)
    sim.run(until_s=1200)
    return {
        "rate": app.log.overall_rate(),
        "norm_perf": app.monitor.mean_normalized_performance(),
        "watts": sim.sensor.average_power_w(),
    }


def main():
    spec = odroid_xu3()
    print(f"Platform: {spec.name} — {spec.big.n_cores} big "
          f"(0.8–{spec.big.max_freq_mhz / 1000:.1f} GHz) + "
          f"{spec.little.n_cores} little "
          f"(0.8–{spec.little.max_freq_mhz / 1000:.1f} GHz)")

    # 1. Calibrate the linear power estimator (Section 3.1.2).
    power_estimator = calibrate(spec)
    print(f"Calibrated {len(power_estimator.fitted_points)} "
          "(cluster, frequency) power models from the microbenchmark sweep")

    # 2. Measure the maximum achievable rate with a baseline run and set
    #    the paper's default target: 50 % ± 5 % of it.
    probe = run_version(
        spec,
        lambda sim, app: sim.add_controller(BaselineController()),
        PerformanceTarget(1.0, 1.0, 1.0),
        n_units=80,
    )
    target = PerformanceTarget.fraction_of(probe["rate"], 0.5)
    print(f"Max achievable rate {probe['rate']:.2f} HPS → target window "
          f"[{target.min_rate:.2f}, {target.max_rate:.2f}] HPS")

    # 3. Run the baseline and HARS-E against that target.
    baseline = run_version(
        spec,
        lambda sim, app: sim.add_controller(BaselineController()),
        target,
    )
    hars = run_version(
        spec,
        lambda sim, app: sim.add_controller(
            HarsManager("swaptions", HARS_E, PerformanceEstimator(),
                        power_estimator)
        ),
        target,
    )

    print("\n            rate(HPS)  norm perf  watts  perf/watt")
    for name, outcome in (("baseline", baseline), ("HARS-E", hars)):
        pp = outcome["norm_perf"] / outcome["watts"]
        print(f"  {name:9s} {outcome['rate']:8.2f}  {outcome['norm_perf']:9.3f}"
              f"  {outcome['watts']:5.2f}  {pp:9.3f}")
    gain = (hars["norm_perf"] / hars["watts"]) / (
        baseline["norm_perf"] / baseline["watts"]
    )
    print(f"\nHARS-E improves perf/watt by {gain:.2f}x over the baseline")


if __name__ == "__main__":
    main()
