#!/usr/bin/env python
"""Quickstart: run one self-adaptive application under HARS.

Everything here uses the *stable* surface — ``import repro`` is the only
import a script needs.  We set a 50 % ± 5 % performance target for the
swaptions benchmark, let the exhaustive HARS runtime (HARS-E) drive the
system state, compare against the Linux-GTS baseline, and pull a few
telemetry counters from the same run.

Run with:  python examples/quickstart.py
"""

import repro


def main():
    shape = repro.RunShape("swaptions", n_units=150)
    config = repro.RunConfig(telemetry=True)

    # One call per version: the runner measures the maximum achievable
    # rate with a solo baseline probe, sets the paper's default target
    # (50 % ± 5 % of it), builds the platform model, and runs.
    baseline = repro.run("baseline", shape, config)
    hars = repro.run("hars-e", shape, config)

    target = hars.target
    print(f"Max achievable rate {hars.max_rate:.2f} HPS → target window "
          f"[{target.min_rate:.2f}, {target.max_rate:.2f}] HPS")

    print("\n            rate(HPS)  norm perf  watts  perf/watt")
    for name, outcome in (("baseline", baseline), ("HARS-E", hars)):
        app = outcome.metrics.apps[0]
        print(f"  {name:9s} {app.overall_rate:8.2f}  "
              f"{app.mean_normalized_perf:9.3f}  "
              f"{outcome.metrics.avg_power_w:5.2f}  "
              f"{outcome.metrics.perf_per_watt:9.3f}")
    gain = hars.metrics.perf_per_watt / baseline.metrics.perf_per_watt
    print(f"\nHARS-E improves perf/watt by {gain:.2f}x over the baseline")

    # The same run, seen through the telemetry registry: every run with
    # telemetry enabled carries a metrics snapshot (provably without
    # changing a single result float).
    flat = repro.telemetry.flatten_snapshot(
        hars.telemetry.registry.snapshot()
    )
    print("\nHARS-E run, as telemetry sees it:")
    for name, labels in (
        ("sim_ticks_total", ()),
        ("heartbeats_total", (("app", "swaptions"),)),
        ("states_applied_total", (("app", "swaptions"),)),
        ("energy_joules_total", (("rail", "total"),)),
    ):
        label_text = ",".join(f"{k}={v}" for k, v in labels)
        series = f"{name}{{{label_text}}}" if label_text else name
        print(f"  {series:38s} {flat[(name, labels)]:.1f}")


if __name__ == "__main__":
    main()
