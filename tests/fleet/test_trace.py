"""Arrival-trace generator tests: determinism, ordering, shapes."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fleet.config import TRACES, FleetConfig
from repro.fleet.trace import make_trace


def _config(**overrides):
    base = dict(nodes=4, requests=500, per_node_rps=10.0)
    base.update(overrides)
    return FleetConfig(**base)


class TestMakeTrace:
    def test_deterministic_in_config(self):
        assert make_trace(_config()) == make_trace(_config())

    def test_seed_changes_trace(self):
        assert make_trace(_config(seed=0)) != make_trace(_config(seed=1))

    @pytest.mark.parametrize("shape", TRACES)
    def test_all_shapes_generate(self, shape):
        trace = make_trace(_config(trace=shape))
        assert len(trace) == 500
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(r.arrival_s > 0 for r in trace)

    def test_indices_follow_arrival_order(self):
        trace = make_trace(_config())
        assert [r.index for r in trace] == list(range(len(trace)))

    def test_deadline_is_arrival_plus_budget(self):
        config = _config(deadline_s=0.25)
        for request in make_trace(config):
            assert request.deadline_s == pytest.approx(
                request.arrival_s + 0.25
            )
            assert request.budget_s == pytest.approx(0.25)

    def test_bimodal_sizes(self):
        config = _config(
            requests=2000, heavy_fraction=0.2, heavy_scale=6.0
        )
        trace = make_trace(config)
        heavy = [r for r in trace if r.heavy]
        light = [r for r in trace if not r.heavy]
        assert heavy and light
        # The two modes are separated by the heavy scale.
        assert min(r.service_units for r in heavy) > max(
            r.service_units for r in light
        )
        assert len(heavy) / len(trace) == pytest.approx(0.2, abs=0.05)

    def test_mean_rate_tracks_configured_rate(self):
        config = _config(requests=5000)
        trace = make_trace(config)
        mean_rate = len(trace) / trace[-1].arrival_s
        assert mean_rate == pytest.approx(config.arrival_rps, rel=0.1)

    def test_burst_trace_is_bursty(self):
        """Inter-arrival variance far above the stationary trace's."""
        poisson = make_trace(_config(requests=3000))
        burst = make_trace(_config(requests=3000, trace="burst"))

        def cv2(trace):
            gaps = [
                b.arrival_s - a.arrival_s
                for a, b in zip(trace, trace[1:])
            ]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        assert cv2(burst) > cv2(poisson) * 1.5

    def test_unknown_shape_rejected(self):
        config = dataclasses.replace(_config(), trace="poisson")
        object.__setattr__(config, "trace", "square-wave")
        with pytest.raises(ConfigurationError):
            make_trace(config)


class TestFleetConfig:
    def test_arrival_rps(self):
        assert _config(nodes=4, per_node_rps=10.0).arrival_rps == 40.0

    def test_profile_mirror_stays_in_sync_with_engine(self):
        from repro.fleet.config import _PROFILES
        from repro.sim.engine import PROFILES

        assert _PROFILES == PROFILES

    @pytest.mark.parametrize(
        "field, value",
        [
            ("nodes", 0),
            ("shards", 0),
            ("shards", 100),  # > nodes
            ("tick_s", 0.0),
            ("requests", 0),
            ("per_node_rps", 0.0),
            ("deadline_s", 0.0),
            ("service_units", 0.0),
            ("heavy_fraction", 1.5),
            ("heavy_scale", 0.5),
            ("lane_threads", 0),
            ("percentile", 0.0),
            ("slack", 1.0),
            ("slo_window", 1),
            ("rate_span_s", 0.0),
            ("drain_s", -1.0),
            ("trace", "nope"),
            ("profile", "nope"),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            _config(**{field: value})
