"""FleetNode completion mapping and router policy tests."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.config import FleetConfig
from repro.fleet.node import LANES, FleetNode
from repro.fleet.router import ROUTERS, make_router
from repro.fleet.trace import Request


def _request(index, arrival_s=0.0, units=0.05, budget=0.5):
    return Request(
        index=index,
        app="search",
        arrival_s=arrival_s,
        service_units=units,
        deadline_s=arrival_s + budget,
        heavy=False,
    )


@pytest.fixture(scope="module")
def config():
    return FleetConfig(nodes=2, requests=10)


class TestFleetNode:
    def test_idle_node_steps_quietly(self, config):
        node = FleetNode(0, config)
        for _ in range(5):
            assert node.step() == []
        assert node.pending == 0

    def test_request_completes_with_latency(self, config):
        node = FleetNode(0, config)
        node.enqueue(_request(0), "base")
        assert node.pending == 1
        completions = []
        for _ in range(200):
            completions = node.step()
            if completions:
                break
        assert len(completions) == 1
        done = completions[0]
        assert done.request.index == 0
        assert done.lane == "base"
        assert done.latency_s > 0
        assert done.latency_s == pytest.approx(
            done.finish_s - done.request.arrival_s
        )
        assert not done.missed
        assert node.pending == 0
        assert node.slo["base"].observed_total == 1

    def test_wait_estimate_grows_with_backlog(self, config):
        node = FleetNode(0, config)
        idle_wait = node.est_wait_s("base")
        for index in range(10):
            node.enqueue(_request(index, units=1.0), "base")
        assert node.est_wait_s("base") > idle_wait
        assert node.backlog_units("base") == pytest.approx(10.0)
        assert node.queue_len("base") == 10

    def test_hot_lane_nominal_rate_is_faster(self, config):
        node = FleetNode(0, config)
        assert node.nominal_rate("hot") > node.nominal_rate("base")

    def test_double_route_and_unknown_lane_rejected(self, config):
        node = FleetNode(0, config)
        node.enqueue(_request(0), "base")
        with pytest.raises(ConfigurationError):
            node.enqueue(_request(0), "hot")
        with pytest.raises(ConfigurationError):
            node.enqueue(_request(1), "lukewarm")

    def test_energy_accrues_over_time(self, config):
        node = FleetNode(0, config)
        for _ in range(10):
            node.step()
        assert node.energy_j("total") > 0
        assert node.average_power_w("total") > 0


class TestRouters:
    def test_registry_covers_the_three_policies(self):
        assert set(ROUTERS) == {
            "round-robin",
            "least-loaded",
            "deadline-risk",
        }
        with pytest.raises(ConfigurationError):
            make_router("random")

    def test_round_robin_cycles(self, config):
        nodes = [FleetNode(i, config) for i in range(3)]
        router = make_router("round-robin")
        picks = [
            router.route(_request(i), nodes, 0.0) for i in range(6)
        ]
        assert [p[0] for p in picks] == [0, 1, 2, 0, 1, 2]
        assert all(p[1] == "base" for p in picks)

    def test_least_loaded_avoids_the_busy_node(self, config):
        nodes = [FleetNode(i, config) for i in range(3)]
        for index in range(20):
            nodes[0].enqueue(_request(index, units=1.0), "base")
        router = make_router("least-loaded")
        node_index, lane = router.route(_request(100), nodes, 0.0)
        assert node_index != 0
        assert lane == "base"
        # Ties break to the lowest index — determinism, not luck.
        assert node_index == 1

    def test_deadline_risk_promotes_under_pressure(self, config):
        nodes = [FleetNode(i, config) for i in range(2)]
        router = make_router("deadline-risk")
        # Relaxed deadline, empty queues: stay on the base lane.
        node_index, lane = router.route(
            _request(0, budget=10.0), nodes, 0.0
        )
        assert lane == "base"
        # Same request with every base lane jammed: go hot.
        for node in nodes:
            for index in range(1, 30):
                node.enqueue(
                    _request(index * 10 + node.index, units=1.0), "base"
                )
        node_index, lane = router.route(
            _request(500, budget=0.5), nodes, 0.0
        )
        assert lane == "hot"

    def test_deadline_risk_margin_validated(self):
        cls = ROUTERS["deadline-risk"]
        with pytest.raises(ConfigurationError):
            cls(margin=0.0)
        with pytest.raises(ConfigurationError):
            cls(margin=1.5)

    def test_lanes_constant_matches_node(self, config):
        node = FleetNode(0, config)
        assert tuple(node.models) == LANES
        assert tuple(node.targets) == LANES


class _FlatNode:
    """A node with exact, hand-set routing signals for boundary tests."""

    class _Config:
        lane_threads = 1

    config = _Config()

    def __init__(self, index, wait_s=0.0):
        self.index = index
        self._wait_s = wait_s

    def nominal_rate(self, lane):
        return 1.0

    def est_wait_s(self, lane):
        return self._wait_s


class TestRouterEdgeCases:
    """Satellite gates: empty candidate sets and exact tie/boundary
    behaviour — the determinism contract failover routing leans on."""

    @pytest.mark.parametrize(
        "name", ["round-robin", "least-loaded", "deadline-risk"]
    )
    def test_empty_candidate_set_raises(self, name):
        router = make_router(name)
        with pytest.raises(ConfigurationError):
            router.route(_request(0), [], 0.0)

    def test_round_robin_survives_a_shrinking_node_list(self, config):
        # The supervisor filters the candidate list between ticks; a
        # stale counter must reduce against the *current* length, and
        # the full-list cycle must be unchanged by the detour.
        nodes = [FleetNode(i, config) for i in range(3)]
        router = make_router("round-robin")
        assert router.route(_request(0), nodes, 0.0)[0] == 0
        assert router.route(_request(1), nodes, 0.0)[0] == 1
        # Two nodes drop out: the counter folds into the shorter list.
        assert router.route(_request(2), nodes[:1], 0.0)[0] == 0
        assert router.route(_request(3), nodes, 0.0)[0] == 1

    def test_least_loaded_tie_breaks_to_lowest_index(self):
        # Equal estimated waits everywhere: position 0 must win — the
        # strict < in the argmin scan, not an accident of float noise.
        nodes = [_FlatNode(i, wait_s=0.25) for i in range(4)]
        router = make_router("least-loaded")
        assert router.route(_request(0), nodes, 0.0) == (0, "base")

    def test_deadline_risk_boundary_is_inclusive(self):
        import math

        # margin * budget = 0.6 * 0.5 is exact in binary (0.5 only
        # shifts the exponent), so eta == threshold is reachable: an
        # estimate exactly *at* the margin stays on the base lane, one
        # ulp above promotes to hot.
        router = ROUTERS["deadline-risk"](margin=0.6)
        threshold = 0.6 * 0.5
        nodes = [_FlatNode(0), _FlatNode(1)]
        at_margin = _request(0, units=threshold, budget=0.5)
        assert router.route(at_margin, nodes, 0.0) == (0, "base")
        over = _request(1, units=math.nextafter(threshold, 1.0), budget=0.5)
        assert router.route(over, nodes, 0.0)[1] == "hot"
