"""Fleet chaos config, timeline compiler, and delivery-helper tests."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.config import FaultConfig, lane_crash_schedule
from repro.fleet.chaos import (
    NODE_FAULT_KINDS,
    FleetFaultConfig,
    NodeChaosEvent,
    active_velocity_factor,
    compile_timelines,
    crash_fault_config,
    crash_wave,
    summarize_timelines,
)


def _crash(node, at_s):
    return NodeChaosEvent(kind="node_crash", node=node, at_s=at_s)


class TestNodeChaosEvent:
    def test_kinds_validated(self):
        with pytest.raises(ConfigurationError):
            NodeChaosEvent(kind="node_meltdown", node=0, at_s=1.0)

    def test_negative_node_and_time_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeChaosEvent(kind="node_crash", node=-1, at_s=1.0)
        with pytest.raises(ConfigurationError):
            NodeChaosEvent(kind="node_crash", node=0, at_s=-0.1)

    def test_hang_needs_duration(self):
        with pytest.raises(ConfigurationError):
            NodeChaosEvent(kind="node_hang", node=0, at_s=1.0, duration_s=0.0)

    def test_slowdown_factor_bounds(self):
        for factor in (0.0, 1.0, 1.5):
            with pytest.raises(ConfigurationError):
                NodeChaosEvent(
                    kind="node_slowdown",
                    node=0,
                    at_s=1.0,
                    duration_s=2.0,
                    factor=factor,
                )

    def test_velocity_factor(self):
        hang = NodeChaosEvent(kind="node_hang", node=0, at_s=1.0, duration_s=2.0)
        slow = NodeChaosEvent(
            kind="node_slowdown", node=0, at_s=1.0, duration_s=2.0, factor=0.25
        )
        assert hang.velocity_factor == 0.0
        assert slow.velocity_factor == 0.25


class TestFleetFaultConfig:
    def test_default_is_disabled(self):
        assert not FleetFaultConfig().enabled

    def test_schedule_or_rate_enables(self):
        assert FleetFaultConfig(schedule=(_crash(0, 1.0),)).enabled
        assert FleetFaultConfig(node_crash_rate=0.01).enabled
        assert FleetFaultConfig(node_hang_rate=0.01).enabled
        assert FleetFaultConfig(node_slowdown_rate=0.01).enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetFaultConfig(node_crash_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FleetFaultConfig(hang_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            FleetFaultConfig(slowdown_factor=1.0)
        with pytest.raises(ConfigurationError):
            FleetFaultConfig(restart_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            FleetFaultConfig(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            FleetFaultConfig(schedule=("not-an-event",))


class TestCompileTimelines:
    def test_deterministic(self):
        config = FleetFaultConfig(
            node_crash_rate=0.05, node_hang_rate=0.1, node_slowdown_rate=0.1
        )
        first = compile_timelines(config, 8, 60.0)
        second = compile_timelines(config, 8, 60.0)
        assert first == second

    def test_per_node_streams_independent_of_fleet_size(self):
        # Node k's rate-driven timeline must not change when the fleet
        # grows — the chaos half of the shard-identity argument.
        config = FleetFaultConfig(node_crash_rate=0.05, node_hang_rate=0.1)
        small = compile_timelines(config, 4, 60.0)
        large = compile_timelines(config, 32, 60.0)
        assert small == large[:4]

    def test_horizon_cutoff(self):
        config = FleetFaultConfig(schedule=(_crash(0, 5.0), _crash(0, 50.0)))
        (timeline,) = compile_timelines(config, 1, 10.0)
        assert [event.at_s for event in timeline] == [5.0]

    def test_sorted_by_time(self):
        config = FleetFaultConfig(
            schedule=(_crash(0, 9.0), _crash(0, 1.0), _crash(0, 4.0))
        )
        (timeline,) = compile_timelines(config, 1, 20.0)
        assert [event.at_s for event in timeline] == [1.0, 4.0, 9.0]

    def test_out_of_range_schedule_node_rejected(self):
        config = FleetFaultConfig(schedule=(_crash(7, 1.0),))
        with pytest.raises(ConfigurationError):
            compile_timelines(config, 4, 10.0)

    def test_bad_args_rejected(self):
        config = FleetFaultConfig()
        with pytest.raises(ConfigurationError):
            compile_timelines(config, 0, 10.0)
        with pytest.raises(ConfigurationError):
            compile_timelines(config, 1, -1.0)

    def test_summarize_counts_by_kind(self):
        config = FleetFaultConfig(
            schedule=(
                _crash(0, 1.0),
                _crash(1, 2.0),
                NodeChaosEvent(
                    kind="node_hang", node=0, at_s=3.0, duration_s=1.0
                ),
            )
        )
        counts = summarize_timelines(compile_timelines(config, 2, 10.0))
        assert counts == {
            "node_crash": 2,
            "node_hang": 1,
            "node_slowdown": 0,
        }
        assert set(counts) == set(NODE_FAULT_KINDS)


class TestCrashFaultConfig:
    def test_crashes_become_lane_lifecycle_events(self):
        timeline = (_crash(0, 3.0), _crash(0, 7.0))
        compiled = crash_fault_config(timeline, ("hot", "base"))
        assert compiled.enabled
        events = compiled.lifecycle_schedule
        assert [event.kind for event in events] == ["app_crash"] * 4
        assert [event.at_s for event in events] == [3.0, 3.0, 7.0, 7.0]
        assert {event.target for event in events} == {"hot", "base"}

    def test_epoch_offset_makes_times_sim_local(self):
        timeline = (_crash(0, 3.0), _crash(0, 7.0))
        compiled = crash_fault_config(timeline, ("base",), after_s=3.0)
        # The 3.0 crash already happened (it caused this reboot); only
        # the 7.0 crash survives, at local time 4.0.
        assert [event.at_s for event in compiled.lifecycle_schedule] == [4.0]

    def test_no_crashes_means_disabled_config(self):
        hang = NodeChaosEvent(kind="node_hang", node=0, at_s=1.0, duration_s=2.0)
        compiled = crash_fault_config((hang,), ("hot", "base"))
        assert isinstance(compiled, FaultConfig)
        assert not compiled.enabled

    def test_lane_crash_schedule_validates(self):
        with pytest.raises(ConfigurationError):
            lane_crash_schedule([1.0], apps=())
        with pytest.raises(ConfigurationError):
            lane_crash_schedule([-1.0], apps=("base",))


class TestActiveVelocityFactor:
    def test_quiet_timeline_is_nominal(self):
        assert active_velocity_factor((), 1.0) == 1.0
        assert active_velocity_factor((_crash(0, 1.0),), 1.0) == 1.0

    def test_hang_and_slowdown_episodes(self):
        timeline = (
            NodeChaosEvent(
                kind="node_slowdown", node=0, at_s=1.0, duration_s=4.0,
                factor=0.25,
            ),
            NodeChaosEvent(kind="node_hang", node=0, at_s=2.0, duration_s=1.0),
        )
        assert active_velocity_factor(timeline, 0.5) == 1.0
        assert active_velocity_factor(timeline, 1.5) == 0.25
        # Overlap: the hang wins (min factor).
        assert active_velocity_factor(timeline, 2.5) == 0.0
        assert active_velocity_factor(timeline, 4.0) == 0.25
        assert active_velocity_factor(timeline, 5.5) == 1.0


class TestCrashWave:
    def test_ten_percent_wave(self):
        wave = crash_wave(50, 0.10, 5.0)
        assert len(wave) == 5
        assert all(event.kind == "node_crash" for event in wave)
        assert all(event.at_s == 5.0 for event in wave)
        assert len({event.node for event in wave}) == 5

    def test_deterministic_and_strided(self):
        assert crash_wave(50, 0.10, 5.0) == crash_wave(50, 0.10, 5.0)
        nodes = [event.node for event in crash_wave(10, 0.3, 1.0)]
        assert nodes == sorted(nodes)
        assert max(nodes) < 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            crash_wave(0, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            crash_wave(10, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            crash_wave(10, 1.5, 1.0)
        with pytest.raises(ConfigurationError):
            crash_wave(10, 0.1, -1.0)
