"""Fleet cluster tests: shard-count determinism, accounting, telemetry.

The load-bearing property is bit-identity: because nodes share no
simulation state and routing always precedes stepping, the shard count
must be pure mechanical sympathy.  The determinism tests run the same
seeded fleet under different shard counts and compare the full summary
fingerprints with ``==`` — no tolerances.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.fleet.cluster import FleetCluster, run_fleet
from repro.fleet.config import FleetConfig
from repro.telemetry.registry import flatten_snapshot

#: Small but non-trivial fleet the module's tests share.
_SMALL = FleetConfig(nodes=6, requests=400, per_node_rps=8.0)


@pytest.fixture(scope="module")
def small_result():
    return run_fleet("deadline-risk", _SMALL)


class TestAccounting:
    def test_trace_fully_served(self, small_result):
        assert small_result.completed == _SMALL.requests
        assert small_result.unserved == 0
        assert small_result.requests == _SMALL.requests

    def test_percentiles_ordered(self, small_result):
        assert (
            0.0
            < small_result.p50_s
            <= small_result.p95_s
            <= small_result.p99_s
        )

    def test_energy_and_power_positive(self, small_result):
        assert small_result.energy_j > 0
        assert small_result.avg_power_w > 0
        assert small_result.duration_s > 0

    def test_lane_split_covers_all_completions(self, small_result):
        assert (
            sum(small_result.lane_completed.values())
            == small_result.completed
        )

    def test_single_use_guard(self):
        cluster = FleetCluster(_SMALL, router="round-robin")
        cluster.run()
        with pytest.raises(SimulationError):
            cluster.run()

    def test_run_fleet_rejects_wrong_config_type(self):
        with pytest.raises(ConfigurationError):
            run_fleet("round-robin", config={"nodes": 3})


class TestTelemetry:
    def test_fleet_gauges_exported(self, small_result):
        flat = flatten_snapshot(small_result.registry.snapshot())
        names = {name for name, _ in flat}
        assert "fleet_latency_seconds" in names
        assert "fleet_deadline_miss_ratio" in names
        assert "fleet_energy_joules" in names
        assert "fleet_power_watts" in names
        assert "fleet_node_energy_joules" in names
        assert "fleet_requests_routed_total" in names
        assert "fleet_requests_completed_total" in names

    def test_latency_gauges_match_result(self, small_result):
        flat = flatten_snapshot(small_result.registry.snapshot())
        assert flat[
            ("fleet_latency_seconds", (("quantile", "0.99"),))
        ] == pytest.approx(small_result.p99_s)

    def test_per_node_histogram_covers_every_node(self, small_result):
        flat = flatten_snapshot(small_result.registry.snapshot())
        nodes = {
            dict(labels)["node"]
            for name, labels in flat
            if name.startswith("fleet_node_latency_seconds")
            and "node" in dict(labels)
        }
        assert len(nodes) == _SMALL.nodes

    def test_energy_rails_sum_consistently(self, small_result):
        flat = flatten_snapshot(small_result.registry.snapshot())
        big = flat[("fleet_energy_joules", (("rail", "big"),))]
        little = flat[("fleet_energy_joules", (("rail", "little"),))]
        board = flat[("fleet_energy_joules", (("rail", "board"),))]
        total = flat[("fleet_energy_joules", (("rail", "total"),))]
        assert total == pytest.approx(big + little + board)
        assert total == pytest.approx(small_result.energy_j)


class TestShardDeterminism:
    """The ISSUE's acceptance gate: bit-identical across shard counts."""

    @pytest.mark.parametrize("shards", [2, 5])
    def test_small_fleet_bit_identical(self, small_result, shards):
        import dataclasses

        config = dataclasses.replace(_SMALL, shards=shards)
        sharded = run_fleet("deadline-risk", config)
        assert sharded.summary() == small_result.summary()

    def test_fifty_node_run_bit_identical_across_shards(self):
        """Seeded 50-node run, shards 1 vs 7 — full fingerprint equality."""
        base = FleetConfig(nodes=50, requests=1500, per_node_rps=6.0)
        import dataclasses

        first = run_fleet("deadline-risk", base)
        second = run_fleet(
            "deadline-risk", dataclasses.replace(base, shards=7)
        )
        assert first.summary() == second.summary()
        assert first.completed == 1500

    def test_repeat_run_bit_identical(self):
        """Same config twice — the cluster itself is deterministic."""
        config = FleetConfig(nodes=4, requests=200)
        assert (
            run_fleet("least-loaded", config).summary()
            == run_fleet("least-loaded", config).summary()
        )
