"""ServerWorkload queue semantics: grants in, tagged heartbeats out."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.serving import ServerWorkload


@pytest.fixture
def lane():
    return ServerWorkload("base", n_threads=2)


class TestQueueing:
    def test_empty_lane_wants_no_cpu(self, lane):
        assert not lane.wants_cpu(0)
        assert not lane.wants_cpu(1)
        assert lane.backlog_units == 0.0

    def test_submit_makes_threads_hungry(self, lane):
        lane.submit(0, 1.0)
        assert lane.wants_cpu(0) and lane.wants_cpu(1)
        assert lane.queue_len == 1
        assert lane.backlog_units == pytest.approx(1.0)

    def test_completion_emits_tagged_heartbeat(self, lane):
        lane.submit(7, 1.0)
        result = lane.advance({0: 1.0, 1: 1.0})
        assert result.heartbeats == 1
        assert result.heartbeat_tags == ("7",)
        assert lane.backlog_units == pytest.approx(0.0)

    def test_partial_grant_keeps_request_in_service(self, lane):
        lane.submit(0, 1.0)
        result = lane.advance({0: 0.4})
        assert result.heartbeats == 0
        assert lane.in_service == 1
        assert lane.queue_len == 0
        assert lane.backlog_units == pytest.approx(0.6)
        result = lane.advance({0: 0.6})
        assert result.heartbeat_tags == ("0",)

    def test_fifo_dispatch_is_deterministic(self, lane):
        for index in range(4):
            lane.submit(index, 0.5)
        # Thread 0 drains first regardless of grant dict ordering.
        result = lane.advance({1: 0.5, 0: 0.5})
        assert result.heartbeat_tags == ("0", "1")
        result = lane.advance({0: 1.0})
        assert result.heartbeat_tags == ("2", "3")

    def test_one_thread_chews_through_queue_in_one_big_grant(self, lane):
        for index in range(3):
            lane.submit(index, 1.0)
        result = lane.advance({0: 3.0})
        assert result.heartbeat_tags == ("0", "1", "2")
        assert result.consumed[0] == pytest.approx(3.0)

    def test_unused_budget_reported(self, lane):
        lane.submit(0, 0.25)
        result = lane.advance({0: 1.0})
        assert result.consumed[0] == pytest.approx(0.25)

    def test_endless_workload_contract(self, lane):
        assert not lane.is_done()
        assert lane.total_heartbeats() == 0

    def test_reset_clears_queue(self, lane):
        lane.submit(0, 1.0)
        lane.advance({0: 0.5})
        lane.reset()
        assert lane.backlog_units == 0.0
        assert lane.queue_len == 0
        assert lane.in_service == 0

    def test_rejects_bad_inputs(self, lane):
        with pytest.raises(ConfigurationError):
            lane.submit(0, 0.0)
        with pytest.raises(ConfigurationError):
            lane.wants_cpu(5)
        with pytest.raises(ConfigurationError):
            ServerWorkload("", 2)


class TestVelocityAndCancel:
    """Chaos hooks: service-velocity episodes and attempt cancellation."""

    def test_hang_freezes_progress_and_heartbeats(self, lane):
        lane.submit(0, 1.0)
        lane.velocity_factor = 0.0
        result = lane.advance({0: 5.0})
        assert result.heartbeats == 0
        assert result.consumed[0] == 0.0
        assert lane.backlog_units == pytest.approx(1.0)
        # Episode over: the queue resumes exactly where it froze.
        lane.velocity_factor = 1.0
        assert lane.advance({0: 1.0}).heartbeat_tags == ("0",)

    def test_slowdown_scales_the_grant(self, lane):
        lane.submit(0, 1.0)
        lane.velocity_factor = 0.25
        lane.advance({0: 2.0})
        assert lane.backlog_units == pytest.approx(0.5)

    def test_reset_restores_nominal_velocity(self, lane):
        lane.velocity_factor = 0.0
        lane.reset()
        assert lane.velocity_factor == 1.0

    def test_cancel_queued_request(self, lane):
        lane.submit(0, 1.0)
        lane.submit(1, 1.0)
        assert lane.cancel(0)
        assert lane.queue_len == 1
        assert lane.backlog_units == pytest.approx(1.0)
        # The survivor is untouched and completes normally.
        assert lane.advance({0: 1.0}).heartbeat_tags == ("1",)

    def test_cancel_in_service_request_frees_the_worker(self, lane):
        lane.submit(0, 1.0)
        lane.submit(1, 1.0)
        lane.advance({0: 0.4})  # request 0 in service on thread 0
        assert lane.cancel(0)
        assert lane.in_service == 0
        assert lane.advance({0: 1.0}).heartbeat_tags == ("1",)

    def test_cancel_missing_request_is_a_noop(self, lane):
        lane.submit(0, 1.0)
        assert not lane.cancel(42)
        assert lane.queue_len == 1
