"""Property tests for the SLO window percentiles.

The percentile implementation claims exactness against
``statistics.quantiles(..., method="inclusive")`` — these tests hold it
to that on random traces, plus the monotonicity properties a tail-latency
controller depends on (adding slow requests must never *lower* a
reported tail).
"""

import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.fleet.slo import SloWindow, percentile, recovery_time_s


class TestPercentileFunction:
    def test_single_sample_is_every_percentile(self):
        for p in (0.0, 37.5, 50.0, 99.0, 100.0):
            assert percentile([4.2], p) == 4.2

    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0
        assert percentile([1.0, 2.0, 3.0], 100.0) == 3.0

    def test_order_independent(self):
        data = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(data, 95.0) == percentile(sorted(data), 95.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_statistics_quantiles_inclusive(self, seed):
        rng = random.Random(seed)
        data = [rng.expovariate(10.0) for _ in range(rng.randint(2, 200))]
        cuts = statistics.quantiles(data, n=100, method="inclusive")
        for p in (1, 25, 50, 75, 90, 95, 99):
            assert percentile(data, float(p)) == pytest.approx(
                cuts[p - 1], rel=1e-12, abs=1e-15
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_monotone_in_p(self, seed):
        rng = random.Random(100 + seed)
        data = [rng.random() for _ in range(50)]
        values = [percentile(data, float(p)) for p in range(0, 101, 5)]
        assert values == sorted(values)

    @pytest.mark.parametrize("seed", range(5))
    def test_adding_slow_requests_never_lowers_the_tail(self, seed):
        """The property the MAPE loop leans on: congestion raises P95."""
        rng = random.Random(200 + seed)
        data = [rng.expovariate(5.0) for _ in range(40)]
        before = percentile(data, 95.0)
        slow = max(data) * (1.0 + rng.random())
        for _ in range(10):
            data.append(slow)
            after = percentile(data, 95.0)
            assert after >= before - 1e-15
            before = after

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1.0)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 100.5)


class TestSloWindow:
    def test_empty_window_reports_none(self):
        window = SloWindow()
        assert window.percentile(95.0) is None
        assert window.quantile_summary() is None
        assert window.miss_ratio == 0.0

    def test_observe_and_percentile(self):
        window = SloWindow(max_samples=8)
        for latency in (0.1, 0.2, 0.3, 0.4):
            window.observe(latency)
        assert len(window) == 4
        assert window.percentile(50.0) == pytest.approx(0.25)

    def test_sliding_eviction_forgets_old_samples(self):
        window = SloWindow(max_samples=4)
        for _ in range(4):
            window.observe(0.01)
        fast_p50 = window.percentile(50.0)
        for _ in range(4):
            window.observe(1.0)
        assert window.percentile(50.0) == pytest.approx(1.0)
        assert window.percentile(50.0) > fast_p50
        assert len(window) == 4
        # Cumulative accounting still sees the whole stream.
        assert window.observed_total == 8

    def test_miss_accounting(self):
        window = SloWindow()
        window.observe(0.1, missed=False)
        window.observe(0.9, missed=True)
        window.observe(0.2, missed=False)
        window.observe(1.1, missed=True)
        assert window.miss_total == 2
        assert window.miss_ratio == pytest.approx(0.5)

    def test_quantile_summary_triple(self):
        window = SloWindow()
        for i in range(100):
            window.observe(i / 100.0)
        summary = window.quantile_summary()
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_negative_latency_rejected(self):
        window = SloWindow()
        with pytest.raises(ConfigurationError):
            window.observe(-0.01)

    def test_tiny_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SloWindow(max_samples=1)


class TestRecoveryTime:
    """The crash-wave SLO-recovery metric ``bench_fleet_chaos`` reports."""

    @staticmethod
    def _stream(event_s, bad, good, step=0.01):
        """``bad`` misses right after the event, then ``good`` hits."""
        out = []
        now = event_s
        for _ in range(bad):
            now += step
            out.append((now, True))
        for _ in range(good):
            now += step
            out.append((now, False))
        return out

    def test_recovers_once_the_window_goes_clean(self):
        stream = self._stream(5.0, bad=10, good=200)
        recovery = recovery_time_s(stream, 5.0, window=100, max_miss_ratio=0.05)
        # Needs 100 samples in the window with <= 5 misses: the 10 bad
        # completions must be diluted past sample 105.
        assert recovery == pytest.approx(1.05)

    def test_never_recovering_stream_reports_none(self):
        stream = self._stream(5.0, bad=150, good=0)
        assert recovery_time_s(stream, 5.0, window=100) is None

    def test_too_few_post_event_completions_report_none(self):
        stream = self._stream(5.0, bad=0, good=50)
        assert recovery_time_s(stream, 5.0, window=100) is None

    def test_pre_event_completions_ignored(self):
        noise = [(1.0, True)] * 500
        stream = noise + self._stream(5.0, bad=0, good=100)
        assert recovery_time_s(stream, 5.0, window=100) == pytest.approx(1.0)

    def test_order_independent(self):
        stream = self._stream(2.0, bad=5, good=150)
        shuffled = list(reversed(stream))
        assert recovery_time_s(stream, 2.0) == recovery_time_s(shuffled, 2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recovery_time_s([], 0.0, window=0)
        with pytest.raises(ConfigurationError):
            recovery_time_s([], 0.0, max_miss_ratio=1.5)
