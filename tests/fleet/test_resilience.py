"""Resilience layer end-to-end tests: the ISSUE's acceptance gates.

The load-bearing properties, in the order the classes assert them:

* **Zero-chaos bit-identity** — a fully disabled ``FleetFaultConfig``
  must leave every router/shard combination bit-identical to a fleet
  built without a chaos layer at all.
* **Shard identity under chaos** — crashes, retries, hedges and
  shedding are all routed/decided before any shard steps, so the shard
  count stays pure mechanical sympathy even mid-crash-wave.
* **Failover accounting** — with failover on, crash-stranded requests
  re-queue to survivors within two cluster ticks; with failover off
  they are lost outright and show up under
  ``unserved_causes["lost_to_crash_then_requeued"]``.
* **Cause partition** — ``unserved_causes`` always sums to ``unserved``.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fleet.chaos import FleetFaultConfig, NodeChaosEvent, crash_wave
from repro.fleet.cluster import UNSERVED_CAUSES, run_fleet
from repro.fleet.config import FleetConfig
from repro.fleet.resilience import AdmissionController, ResilienceConfig
from repro.telemetry.registry import flatten_snapshot

_BASE = FleetConfig(nodes=6, requests=400, per_node_rps=8.0)

#: A third of the small fleet crashing mid-arrivals.
_WAVE = FleetFaultConfig(schedule=crash_wave(6, 1 / 3, 3.0))


def _with(config=_BASE, **overrides):
    return dataclasses.replace(config, **overrides)


@pytest.fixture(scope="module")
def wave_on():
    """Crash wave with failover (default resilience)."""
    return run_fleet("deadline-risk", _with(chaos=_WAVE))


@pytest.fixture(scope="module")
def wave_off():
    """Same crash wave, failover ablated."""
    return run_fleet(
        "deadline-risk",
        _with(chaos=_WAVE, resilience=ResilienceConfig(failover=False)),
    )


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(stall_after_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(quarantine_factor=0.5)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(quarantine_factor=3.0, evict_factor=2.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(attempt_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(retry_backoff_s=0.5, backoff_cap_s=0.1)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(hedge_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(shed_queue_depth=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(release_fraction=1.0)

    def test_enablement_queries(self):
        assert not ResilienceConfig().retry_enabled
        assert not ResilienceConfig().hedge_enabled
        assert not ResilienceConfig().admission_enabled
        assert not ResilienceConfig().tracking_enabled
        assert ResilienceConfig(attempt_timeout_s=1.0).tracking_enabled
        assert ResilienceConfig(hedge_fraction=0.5).tracking_enabled
        assert ResilienceConfig(shed_wait_s=1.0).admission_enabled

    def test_backoff_doubles_and_caps(self):
        config = ResilienceConfig(retry_backoff_s=0.05, backoff_cap_s=0.15)
        assert config.backoff_s(1) == 0.05
        assert config.backoff_s(2) == 0.1
        assert config.backoff_s(3) == 0.15  # capped
        with pytest.raises(ConfigurationError):
            config.backoff_s(0)


class TestAdmissionController:
    def test_hysteresis_holds_state_between_trip_and_release(self):
        config = ResilienceConfig(
            shed_queue_depth=10.0, release_fraction=0.8
        )
        admission = AdmissionController(config)
        assert admission.update(5.0, 0.0) == "normal"
        assert admission.update(11.0, 0.0) == "shed"
        # Below the trip level but above release x trip: still shedding.
        assert admission.update(9.0, 0.0) == "shed"
        assert admission.update(7.9, 0.0) == "normal"
        assert admission.ticks == {"normal": 2, "brownout": 0, "shed": 2}

    def test_brownout_sits_between_normal_and_shed(self):
        config = ResilienceConfig(
            shed_queue_depth=10.0, brownout_queue_depth=4.0
        )
        admission = AdmissionController(config)
        assert admission.update(5.0, 0.0) == "brownout"
        assert admission.update(11.0, 0.0) == "shed"
        # Shed clears but brownout has not: step down one level only.
        assert admission.update(5.0, 0.0) == "brownout"
        assert admission.update(3.0, 0.0) == "normal"

    def test_wait_signal_trips_shed(self):
        config = ResilienceConfig(shed_wait_s=1.0)
        admission = AdmissionController(config)
        assert admission.update(0.0, 2.0) == "shed"
        assert admission.update(0.0, 0.5) == "normal"


class TestZeroChaosIdentity:
    """Disabled chaos config == no chaos layer, bit for bit."""

    @pytest.mark.parametrize("router", ["round-robin", "deadline-risk"])
    def test_disabled_config_is_invisible(self, router):
        small = _with(nodes=4, requests=200)
        plain = run_fleet(router, small)
        chaosless = run_fleet(router, _with(small, chaos=FleetFaultConfig()))
        assert plain.summary() == chaosless.summary()

    def test_disabled_config_is_invisible_across_shards(self):
        small = _with(nodes=4, requests=200, shards=3)
        plain = run_fleet("least-loaded", small)
        chaosless = run_fleet(
            "least-loaded", _with(small, chaos=FleetFaultConfig())
        )
        assert plain.summary() == chaosless.summary()


class TestCrashFailover:
    def test_wave_is_fully_served_with_failover(self, wave_on):
        assert wave_on.completed == _BASE.requests
        assert wave_on.unserved == 0
        assert wave_on.resilience["crashes"] == 2
        assert wave_on.resilience["restarts"] == 2
        assert wave_on.resilience["evictions"] == 0

    def test_requeue_lands_within_two_ticks(self, wave_on):
        # The eviction->reroute latency gate from the ISSUE.
        assert wave_on.resilience["requeued"] > 0
        assert wave_on.resilience["max_requeue_ticks"] <= 2

    def test_failover_off_loses_stranded_requests(self, wave_off):
        lost = wave_off.unserved_causes["lost_to_crash_then_requeued"]
        assert lost > 0
        assert wave_off.completed < _BASE.requests
        assert wave_off.resilience["requeued"] == 0

    def test_zero_restart_budget_evicts(self):
        chaos = FleetFaultConfig(
            schedule=crash_wave(6, 1 / 3, 3.0), max_restarts=0
        )
        result = run_fleet("deadline-risk", _with(chaos=chaos))
        assert result.resilience["evictions"] == 2
        assert result.resilience["restarts"] == 0
        # Survivors absorb the re-queued work.
        assert result.completed + result.unserved == _BASE.requests

    def test_health_ledger_exported_as_gauge(self, wave_on):
        flat = flatten_snapshot(wave_on.registry.snapshot())
        names = {name for name, _ in flat}
        assert "fleet_node_health" in names
        assert "fleet_unserved_causes" in names
        assert "fleet_node_crashes_total" in names
        assert "fleet_requests_requeued_total" in names


class TestShardIdentityUnderChaos:
    """The tentpole determinism gate: chaos must not break sharding."""

    @pytest.mark.parametrize("shards", [3, 5])
    def test_crash_wave_bit_identical(self, wave_on, shards):
        sharded = run_fleet(
            "deadline-risk", _with(chaos=_WAVE, shards=shards)
        )
        assert sharded.summary() == wave_on.summary()

    def test_full_stack_bit_identical(self):
        """Chaos + retry + hedge + shedding, shards 1 vs 5."""
        chaos = FleetFaultConfig(
            schedule=crash_wave(6, 1 / 3, 3.0)
            + (
                NodeChaosEvent(
                    kind="node_hang", node=1, at_s=2.0, duration_s=3.0
                ),
            )
        )
        resilience = ResilienceConfig(
            attempt_timeout_s=1.0,
            hedge_fraction=0.6,
            shed_queue_depth=12.0,
            brownout_queue_depth=8.0,
        )
        config = _with(chaos=chaos, resilience=resilience)
        first = run_fleet("deadline-risk", config)
        second = run_fleet("deadline-risk", _with(config, shards=5))
        assert first.summary() == second.summary()


class TestRetryAndHedge:
    def test_hang_triggers_retries_elsewhere(self):
        chaos = FleetFaultConfig(
            schedule=(
                NodeChaosEvent(
                    kind="node_hang", node=0, at_s=1.0, duration_s=6.0
                ),
                NodeChaosEvent(
                    kind="node_hang", node=1, at_s=1.0, duration_s=6.0
                ),
            )
        )
        resilience = ResilienceConfig(attempt_timeout_s=0.5)
        result = run_fleet(
            "least-loaded",
            _with(nodes=4, requests=300, chaos=chaos, resilience=resilience),
        )
        assert result.resilience["retries"] > 0
        assert result.completed + result.unserved == 300
        causes = result.unserved_causes
        assert sum(causes.values()) == result.unserved

    def test_hedging_duplicates_slow_requests(self):
        chaos = FleetFaultConfig(
            schedule=(
                NodeChaosEvent(
                    kind="node_slowdown",
                    node=0,
                    at_s=1.0,
                    duration_s=5.0,
                    factor=0.1,
                ),
            )
        )
        resilience = ResilienceConfig(hedge_fraction=0.5)
        result = run_fleet(
            "least-loaded",
            _with(nodes=4, requests=300, chaos=chaos, resilience=resilience),
        )
        assert result.resilience["hedges"] > 0
        assert result.resilience["hedge_wins"] <= result.resilience["hedges"]
        # First-completion-wins: nothing is double counted.
        assert result.completed <= 300
        assert result.completed + result.unserved == 300


class TestAdmissionEndToEnd:
    def test_overload_sheds_and_demotes(self):
        resilience = ResilienceConfig(
            shed_queue_depth=6.0, brownout_queue_depth=3.0
        )
        result = run_fleet(
            "deadline-risk",
            _with(
                nodes=2,
                requests=400,
                per_node_rps=40.0,
                resilience=resilience,
            ),
        )
        assert result.resilience["shed"] > 0
        assert result.resilience["demoted"] > 0
        assert result.unserved_causes["shed"] == result.resilience["shed"]
        assert result.completed + result.unserved == 400

    def test_causes_partition_the_unserved_count(self, wave_off):
        causes = wave_off.unserved_causes
        assert set(causes) == set(UNSERVED_CAUSES)
        assert all(count >= 0 for count in causes.values())
        assert sum(causes.values()) == wave_off.unserved
