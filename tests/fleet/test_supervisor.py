"""FleetSupervisor state-machine tests (node-granularity PR 3 machine)."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.chaos import FleetFaultConfig
from repro.fleet.resilience import ResilienceConfig
from repro.fleet.supervisor import (
    STEPPING_STATES,
    FleetSupervisor,
    NodeHealth,
)


class _Stub:
    """Just enough of a FleetNode for routable(): an index."""

    def __init__(self, index):
        self.index = index


def _supervisor(nodes=4, chaos=None, **overrides):
    config = ResilienceConfig(**overrides)
    if chaos is None:
        chaos = FleetFaultConfig(node_crash_rate=0.01)
    return FleetSupervisor(config, chaos, nodes), [_Stub(i) for i in range(nodes)]


class TestCrashLifecycle:
    def test_crash_goes_down_then_probation_then_healthy(self):
        chaos = FleetFaultConfig(
            node_crash_rate=0.01, restart_delay_s=1.0, max_restarts=2
        )
        sup, _ = _supervisor(chaos=chaos, probation_s=1.0)
        assert sup.on_crash(0, 2.0) is NodeHealth.DOWN
        assert not sup.is_stepping(0)
        assert sup.restarts_due(2.5) == []
        assert sup.restarts_due(3.0) == [0]
        sup.on_restarted(0, 3.0)
        assert sup.health(0) is NodeHealth.PROBATION
        assert sup.is_stepping(0)
        sup.tick(3.5)
        assert sup.health(0) is NodeHealth.PROBATION
        sup.tick(4.0)
        assert sup.health(0) is NodeHealth.HEALTHY
        assert sup.crashes == 1
        assert sup.restarts == 1

    def test_crash_budget_spent_evicts(self):
        chaos = FleetFaultConfig(node_crash_rate=0.01, max_restarts=1)
        sup, _ = _supervisor(chaos=chaos)
        assert sup.on_crash(0, 1.0) is NodeHealth.DOWN
        sup.on_restarted(0, 2.0)
        assert sup.on_crash(0, 5.0) is NodeHealth.EVICTED
        assert not sup.is_stepping(0)
        assert sup.restarts_due(100.0) == []
        assert sup.evictions == 1

    def test_zero_restart_budget_evicts_immediately(self):
        chaos = FleetFaultConfig(node_crash_rate=0.01, max_restarts=0)
        sup, _ = _supervisor(chaos=chaos)
        assert sup.on_crash(0, 1.0) is NodeHealth.EVICTED


class TestStallEscalation:
    def test_one_rung_per_tick_even_for_a_deep_stall(self):
        # stall_after_s=2, quarantine at 4s, evict at 8s.  First
        # observation at t=10 is already past every threshold, but
        # escalation still walks DEGRADED -> QUARANTINED -> EVICTED one
        # tick at a time.
        sup, _ = _supervisor(stall_after_s=2.0, quarantine_factor=2.0,
                             evict_factor=4.0)
        assert sup.observe(0, 10.0, False, pending=3) is NodeHealth.DEGRADED
        assert sup.observe(0, 10.1, False, pending=3) is NodeHealth.QUARANTINED
        assert not sup.routable([_Stub(0)])  # quarantined: steps, no traffic
        assert sup.is_stepping(0)
        assert sup.observe(0, 10.2, False, pending=3) is NodeHealth.EVICTED
        assert sup.evictions == 1

    def test_short_stall_only_degrades(self):
        sup, _ = _supervisor(stall_after_s=2.0)
        assert sup.observe(0, 2.5, False, pending=1) is NodeHealth.DEGRADED
        # Still under the quarantine threshold: no further escalation.
        assert sup.observe(0, 3.0, False, pending=1) is NodeHealth.DEGRADED

    def test_completion_fully_recovers(self):
        sup, _ = _supervisor(stall_after_s=2.0)
        sup.observe(0, 10.0, False, pending=3)
        sup.observe(0, 10.1, False, pending=3)
        assert sup.health(0) is NodeHealth.QUARANTINED
        assert sup.observe(0, 10.2, True, pending=2) is NodeHealth.HEALTHY
        # The rung reset means a fresh stall starts from DEGRADED again.
        assert sup.observe(0, 13.0, False, pending=2) is NodeHealth.DEGRADED

    def test_idle_node_never_stalls(self):
        sup, _ = _supervisor(stall_after_s=2.0)
        for now in (5.0, 10.0, 50.0):
            assert sup.observe(0, now, False, pending=0) is NodeHealth.HEALTHY


class TestRoutable:
    def test_prefers_healthy_then_probation_then_degraded(self):
        sup, nodes = _supervisor(nodes=3)
        assert sup.routable(nodes) == nodes
        sup.on_crash(0, 1.0)
        sup.on_restarted(0, 2.0)                     # node 0: PROBATION
        sup.observe(1, 10.0, False, pending=1)       # node 1: DEGRADED
        picked = sup.routable(nodes)
        assert [n.index for n in picked] == [2]      # healthy wins
        sup.observe(2, 10.0, False, pending=1)       # node 2: DEGRADED too
        assert [n.index for n in sup.routable(nodes)] == [0]
        sup.on_crash(0, 11.0)                        # probation node dies
        assert [n.index for n in sup.routable(nodes)] == [1, 2]

    def test_empty_when_everything_is_down(self):
        sup, nodes = _supervisor(nodes=2)
        sup.on_crash(0, 1.0)
        sup.on_crash(1, 1.0)
        assert sup.routable(nodes) == []

    def test_failover_off_returns_everything(self):
        sup, nodes = _supervisor(nodes=2, failover=False)
        sup.on_crash(0, 1.0)
        assert sup.routable(nodes) == nodes


class TestBookkeeping:
    def test_ledger_records_every_transition(self):
        chaos = FleetFaultConfig(node_crash_rate=0.01, restart_delay_s=1.0)
        sup, _ = _supervisor(chaos=chaos, probation_s=0.5)
        sup.on_crash(1, 2.0)
        sup.on_restarted(1, 3.0)
        sup.tick(3.5)
        assert [row[1:] for row in sup.ledger] == [
            (1, "healthy", "down", "crash"),
            (1, "down", "probation", "restart"),
            (1, "probation", "healthy", "probation-served"),
        ]

    def test_counts_snapshot(self):
        sup, _ = _supervisor(nodes=3)
        sup.on_crash(0, 1.0)
        counts = sup.counts()
        assert counts["down"] == 1
        assert counts["healthy"] == 2
        assert sum(counts.values()) == 3

    def test_stepping_states_exclude_down_and_evicted(self):
        assert NodeHealth.DOWN not in STEPPING_STATES
        assert NodeHealth.EVICTED not in STEPPING_STATES
        assert NodeHealth.QUARANTINED in STEPPING_STATES

    def test_needs_at_least_one_node(self):
        with pytest.raises(ConfigurationError):
            FleetSupervisor(ResilienceConfig(), None, 0)
