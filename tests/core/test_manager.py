"""Behavioural tests for the HARS runtime manager (Algorithm 1)."""

import pytest

from repro.core.manager import HarsManager
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_I
from repro.core.state import SystemState, max_state
from repro.errors import ConfigurationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile


def _setup(xu3, power_estimator, policy=HARS_E, n_units=60, target=(0.45, 0.5, 0.55),
           adapt_every=5, unit_work=9.6):
    """A workload running at ~1.08 HPS at HARS's initial max state (the
    Table 3.1 split at max frequencies closes the 8-thread barrier at
    ~1.08 units/s); the default target window sits at half that."""
    sim = Simulation(xu3)
    model = DataParallelWorkload(
        WorkloadTraits(name="w", big_little_ratio=1.5),
        8,
        ConstantProfile(unit_work),
        n_units,
    )
    app = sim.add_app(SimApp("w", model, PerformanceTarget(*target)))
    manager = HarsManager(
        app_name="w",
        policy=policy,
        perf_estimator=PerformanceEstimator(),
        power_estimator=power_estimator,
        adapt_every=adapt_every,
    )
    sim.add_controller(manager)
    return sim, app, manager


class TestInitialState:
    def test_starts_at_max_state(self, xu3, power_estimator):
        sim, app, manager = _setup(xu3, power_estimator)
        sim.step()
        assert manager.state == max_state(xu3)
        assert sim.machine.freq_mhz(BIG) == 1600
        assert sim.machine.freq_mhz(LITTLE) == 1300

    def test_custom_initial_state(self, xu3, power_estimator):
        sim = Simulation(xu3)
        model = DataParallelWorkload(
            WorkloadTraits(name="w"), 8, ConstantProfile(1.0), 5
        )
        sim.add_app(SimApp("w", model, PerformanceTarget(1.0, 1.1, 1.2)))
        manager = HarsManager(
            "w",
            HARS_E,
            PerformanceEstimator(),
            power_estimator,
            initial_state=SystemState(1, 1, 800, 800),
        )
        sim.add_controller(manager)
        sim.step()
        assert sim.machine.freq_mhz(BIG) == 800

    def test_threads_pinned_from_start(self, xu3, power_estimator):
        sim, app, _ = _setup(xu3, power_estimator)
        sim.step()
        assert all(t.affinity is not None for t in app.threads)


class TestAdaptation:
    def test_overperforming_app_is_throttled_into_window(
        self, xu3, power_estimator
    ):
        sim, app, manager = _setup(xu3, power_estimator)
        sim.run(until_s=300)
        assert manager.adaptations >= 1
        final_rate = app.log.window_rate(5)
        assert final_rate == pytest.approx(0.5, abs=0.2)

    def test_adaptation_reduces_power(self, xu3, power_estimator):
        sim, app, manager = _setup(xu3, power_estimator)
        sim.run(until_s=300)
        # Far below the ~6.5 W the max state draws.
        assert sim.sensor.average_power_w() < 4.0

    def test_no_adaptation_when_in_window(self, xu3, power_estimator):
        # Target window centred on the max-state rate: nothing to do.
        sim, app, manager = _setup(
            xu3, power_estimator, target=(0.95, 1.05, 1.15)
        )
        sim.run(until_s=100)
        assert manager.adaptations == 0
        assert manager.state == max_state(xu3)

    def test_hars_i_moves_one_step_at_a_time(self, xu3, power_estimator):
        sim, app, manager = _setup(xu3, power_estimator, policy=HARS_I)
        states = []

        original = manager._apply

        def tracking_apply(sim_, state):
            states.append(state)
            original(sim_, state)

        manager._apply = tracking_apply
        sim.run(until_s=400)
        for before, after in zip(states, states[1:]):
            assert before.manhattan_distance(after, xu3) <= 1

    def test_hars_e_converges_faster_than_hars_i(self, xu3, power_estimator):
        sim_e, app_e, _ = _setup(xu3, power_estimator, policy=HARS_E)
        sim_e.run(until_s=400)
        sim_i, app_i, _ = _setup(xu3, power_estimator, policy=HARS_I)
        sim_i.run(until_s=400)
        # Same workload, same target: the exhaustive version spends less
        # energy because it leaves the expensive max state in one jump.
        assert (
            sim_e.sensor.energy_j() < sim_i.sensor.energy_j()
        )

    def test_overhead_accounting(self, xu3, power_estimator):
        sim, app, manager = _setup(xu3, power_estimator)
        sim.run(until_s=300)
        assert manager.states_explored_total > 0
        assert manager.heartbeats_polled > 0
        expected = (
            manager.states_explored_total * manager.state_eval_cost_s
            + manager.heartbeats_polled * manager.poll_cost_s
        )
        assert manager.cpu_overhead_seconds() == pytest.approx(expected)
        assert 0 < manager.cpu_utilization_percent(sim.clock.now_s) < 50

    def test_allocation_reported_for_traces(self, xu3, power_estimator):
        sim, app, manager = _setup(xu3, power_estimator)
        sim.step()
        big, little = manager.current_allocation("w")
        assert big + little >= 1
        assert manager.current_allocation("other") is None


class TestValidation:
    def test_bad_adapt_every(self, xu3, power_estimator):
        with pytest.raises(ConfigurationError):
            HarsManager(
                "w", HARS_E, PerformanceEstimator(), power_estimator,
                adapt_every=0,
            )

    def test_negative_cost(self, xu3, power_estimator):
        with pytest.raises(ConfigurationError):
            HarsManager(
                "w", HARS_E, PerformanceEstimator(), power_estimator,
                state_eval_cost_s=-1.0,
            )

    def test_cpu_utilization_needs_positive_elapsed(
        self, xu3, power_estimator
    ):
        manager = HarsManager(
            "w", HARS_E, PerformanceEstimator(), power_estimator
        )
        with pytest.raises(ConfigurationError):
            manager.cpu_utilization_percent(0.0)
