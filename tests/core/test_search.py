"""Unit tests for the Algorithm 2 search function."""

import pytest

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_I, SearchSpace, sweep_policy
from repro.core.search import EvaluatedState, evaluate_state, get_next_sys_state
from repro.core.state import SystemState, max_state
from repro.errors import ConfigurationError, EstimationError
from repro.heartbeats.targets import PerformanceTarget, Satisfaction


@pytest.fixture
def perf_est():
    return PerformanceEstimator()


def _search(xu3, power_estimator, perf_est, current, rate, target, space, **kw):
    return get_next_sys_state(
        spec=xu3,
        current=current,
        observed_rate=rate,
        n_threads=8,
        target=target,
        space=space,
        perf_estimator=perf_est,
        power_estimator=power_estimator,
        **kw,
    )


class TestPolicies:
    def test_hars_i_spaces_are_directional(self):
        over = HARS_I.space_for(Satisfaction.OVERPERF)
        under = HARS_I.space_for(Satisfaction.UNDERPERF)
        assert (over.m, over.n, over.d) == (1, 0, 1)
        assert (under.m, under.n, under.d) == (0, 1, 1)

    def test_hars_e_space_is_paper_box(self):
        space = HARS_E.space_for(Satisfaction.OVERPERF)
        assert (space.m, space.n, space.d) == (4, 4, 7)

    def test_sweep_policy(self):
        policy = sweep_policy(5)
        assert policy.space_for(Satisfaction.OVERPERF).d == 5
        assert policy.scheduler == "interleaved"

    def test_invalid_space_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchSpace(m=-1, n=0, d=1)
        with pytest.raises(ConfigurationError):
            SearchSpace(m=0, n=0, d=0)


class TestSearchSelection:
    def test_overperforming_run_shrinks_the_state(
        self, xu3, power_estimator, perf_est
    ):
        current = max_state(xu3)
        target = PerformanceTarget(0.9, 1.0, 1.1)
        result = _search(
            xu3, power_estimator, perf_est, current, 4.0, target,
            SearchSpace(4, 4, 7),
        )
        chosen = result.state
        assert chosen != current
        # The chosen state still satisfies the target in estimation...
        assert result.best.est_rate >= target.min_rate
        # ...but is much cheaper than staying at max.
        stay = evaluate_state(
            current, current, 4.0, 8, target, perf_est, power_estimator
        )
        assert result.best.est_power < stay.est_power

    def test_underperforming_run_grows_the_state(
        self, xu3, power_estimator, perf_est
    ):
        current = SystemState(0, 2, 800, 800)
        target = PerformanceTarget(2.0, 2.2, 2.4)
        result = _search(
            xu3, power_estimator, perf_est, current, 0.6, target,
            SearchSpace(0, 4, 7),
        )
        assert result.best.est_rate > 0.6

    def test_feasible_dominates_higher_pp_infeasible(
        self, xu3, power_estimator, perf_est
    ):
        """A state meeting the target wins even when an infeasible state
        has better perf/watt (Algorithm 2 lines 13–22)."""
        current = max_state(xu3)
        target = PerformanceTarget(3.0, 3.2, 3.4)
        result = _search(
            xu3, power_estimator, perf_est, current, 4.0, target,
            SearchSpace(4, 4, 7),
        )
        assert result.best.est_rate >= target.min_rate

    def test_when_nothing_feasible_pick_fastest(
        self, xu3, power_estimator, perf_est
    ):
        current = SystemState(0, 1, 800, 800)
        target = PerformanceTarget(50.0, 55.0, 60.0)  # unreachable
        result = _search(
            xu3, power_estimator, perf_est, current, 0.5, target,
            SearchSpace(0, 1, 1),
        )
        # Must move toward more capacity even though infeasible.
        assert result.best.est_rate > 0.5

    def test_current_state_is_floor(self, xu3, power_estimator, perf_est):
        """The search never returns a state estimated worse than staying
        (getBetterState)."""
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(1.9, 2.0, 2.1)  # achieved at current
        result = _search(
            xu3, power_estimator, perf_est, current, 2.0, target,
            SearchSpace(4, 4, 7),
        )
        stay = evaluate_state(
            current, current, 2.0, 8, target, perf_est, power_estimator
        )
        if result.state != current:
            assert result.best.perf_per_power >= stay.perf_per_power

    def test_candidate_filter_restricts(self, xu3, power_estimator, perf_est):
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(0.5, 0.6, 0.7)

        def only_keep_freqs(candidate, cur):
            return (
                candidate.f_big_mhz == cur.f_big_mhz
                and candidate.f_little_mhz == cur.f_little_mhz
            )

        result = _search(
            xu3, power_estimator, perf_est, current, 2.0, target,
            SearchSpace(4, 4, 7), candidate_filter=only_keep_freqs,
        )
        assert result.state.f_big_mhz == 1200
        assert result.state.f_little_mhz == 1000

    def test_filter_rejecting_everything_stays_put(
        self, xu3, power_estimator, perf_est
    ):
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(0.5, 0.6, 0.7)
        result = _search(
            xu3, power_estimator, perf_est, current, 2.0, target,
            SearchSpace(1, 1, 2), candidate_filter=lambda c, cur: False,
        )
        assert result.state == current
        # The forced hold is not an Algorithm 2 candidate: the filter
        # rejected the whole neighbourhood (current state included), so
        # the overhead metering must not count the fallback evaluation.
        assert result.forced_fallback
        assert result.states_explored == 0

    def test_normal_search_is_not_a_forced_fallback(
        self, xu3, power_estimator, perf_est
    ):
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(0.5, 0.6, 0.7)
        result = _search(
            xu3, power_estimator, perf_est, current, 2.0, target,
            SearchSpace(1, 0, 1),
        )
        assert not result.forced_fallback

    def test_states_explored_counts_evaluations(
        self, xu3, power_estimator, perf_est
    ):
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(0.5, 0.6, 0.7)
        small = _search(
            xu3, power_estimator, perf_est, current, 2.0, target,
            SearchSpace(1, 0, 1),
        )
        large = _search(
            xu3, power_estimator, perf_est, current, 2.0, target,
            SearchSpace(4, 4, 7),
        )
        assert small.states_explored == 5
        assert large.states_explored > 100

    def test_invalid_rate_rejected(self, xu3, power_estimator, perf_est):
        with pytest.raises(EstimationError):
            _search(
                xu3, power_estimator, perf_est, max_state(xu3), 0.0,
                PerformanceTarget(1.0, 1.1, 1.2), SearchSpace(1, 1, 2),
            )


class TestPerfPerPower:
    def _evaluated(self, est_power):
        return EvaluatedState(
            state=SystemState(2, 2, 1200, 1000),
            estimate=None,
            est_rate=1.0,
            norm_perf=1.0,
            est_power=est_power,
        )

    def test_zero_power_estimate_raises_estimation_error(self):
        with pytest.raises(EstimationError, match="non-positive"):
            self._evaluated(0.0).perf_per_power

    def test_negative_power_estimate_raises_estimation_error(self):
        with pytest.raises(EstimationError, match="perf/watt"):
            self._evaluated(-0.5).perf_per_power

    def test_positive_power_divides(self):
        assert self._evaluated(2.0).perf_per_power == pytest.approx(0.5)


class _FlakyPerfEstimator(PerformanceEstimator):
    """Raises EstimationError for a chosen set of candidate states."""

    def __init__(self, poisoned):
        super().__init__()
        self.poisoned = poisoned

    def estimate(self, state, n_threads):
        if state in self.poisoned:
            raise EstimationError(f"poisoned candidate {state!r}")
        return super().estimate(state, n_threads)


class TestEstimationFailures:
    """One bad candidate degrades the sweep; it never aborts the cycle."""

    def test_poisoned_candidate_is_skipped_and_counted(
        self, xu3, power_estimator
    ):
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(0.5, 0.6, 0.7)
        space = SearchSpace(1, 0, 1)
        clean = _search(
            xu3, power_estimator, PerformanceEstimator(), current, 2.0,
            target, space,
        )
        poisoned_state = SystemState(1, 2, 1200, 1000)
        flaky = _search(
            xu3, power_estimator, _FlakyPerfEstimator({poisoned_state}),
            current, 2.0, target, space,
        )
        assert flaky.estimation_failures == 1
        assert flaky.states_explored == clean.states_explored - 1
        assert flaky.state != poisoned_state
        assert not flaky.forced_fallback

    def test_all_neighbours_poisoned_still_returns_current(
        self, xu3, power_estimator
    ):
        current = SystemState(2, 2, 1200, 1000)
        target = PerformanceTarget(0.5, 0.6, 0.7)

        class _OnlyCurrent(PerformanceEstimator):
            def estimate(self, state, n_threads):
                if state != current:
                    raise EstimationError("poisoned")
                return super().estimate(state, n_threads)

        result = _search(
            xu3, power_estimator, _OnlyCurrent(), current, 2.0, target,
            SearchSpace(1, 1, 2),
        )
        assert result.state == current
        assert result.states_explored == 1
        assert result.estimation_failures > 0

    def test_clean_sweep_reports_zero_failures(
        self, xu3, power_estimator, perf_est
    ):
        result = _search(
            xu3, power_estimator, perf_est, SystemState(2, 2, 1200, 1000),
            2.0, PerformanceTarget(0.5, 0.6, 0.7), SearchSpace(1, 1, 2),
        )
        assert result.estimation_failures == 0
