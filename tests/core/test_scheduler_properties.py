"""Property tests for the thread-split policies (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.schedulers import chunk_split, interleaved_split
from repro.extensions.stage_aware import stage_aware_split

_N = st.integers(min_value=1, max_value=64)


@given(n=_N, data=st.data())
def test_chunk_split_properties(n, data):
    t_big = data.draw(st.integers(min_value=0, max_value=n))
    flags = chunk_split(n, t_big)
    assert len(flags) == n
    assert sum(flags) == t_big
    # Chunk property: little threads form one consecutive prefix.
    if t_big < n:
        first_big = flags.index(True) if t_big else n
        assert all(not f for f in flags[:first_big])
        assert all(f for f in flags[first_big:])


@given(n=_N, data=st.data())
def test_interleaved_split_properties(n, data):
    t_big = data.draw(st.integers(min_value=0, max_value=n))
    flags = interleaved_split(n, t_big)
    assert len(flags) == n
    assert sum(flags) == t_big
    # Interleave property: every window of ceil(n/t_big) threads holds at
    # least one big thread (big slots spread evenly).
    if t_big:
        window = -(-n // t_big)  # ceil
        for start in range(0, n - window + 1):
            assert any(flags[start : start + window + 1])


@given(
    stage_sizes=st.lists(
        st.integers(min_value=1, max_value=10), min_size=1, max_size=6
    ),
    data=st.data(),
)
def test_stage_aware_split_properties(stage_sizes, data):
    stages = [s for s, size in enumerate(stage_sizes) for _ in range(size)]
    n = len(stages)
    t_big = data.draw(st.integers(min_value=0, max_value=n))
    flags = stage_aware_split(stages, t_big)
    assert len(flags) == n
    assert sum(flags) == t_big
    # Each stage's big share is within one thread of proportional.
    for stage_index, size in enumerate(stage_sizes):
        got = sum(
            flag
            for flag, stage in zip(flags, stages)
            if stage == stage_index
        )
        ideal = size * t_big / n
        assert abs(got - ideal) <= 1.0 + 1e-9
