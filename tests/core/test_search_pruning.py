"""Edge cases of the Algorithm 2 neighbourhood pruning.

The sweep clamps ``[x − m, x + n]`` per dimension to the platform's
ranges and prunes by Manhattan distance ``d`` — these tests pin the
boundary behaviour: a candidate at *exactly* distance ``d`` survives,
windows clip at the spec's minima/maxima, and a degenerate 1-big +
1-little platform still yields a legal (non-empty, never zero-core)
candidate set.
"""

import pytest

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E
from repro.core.search import get_next_sys_state
from repro.core.state import SystemState, from_indices, max_state, neighbourhood
from repro.heartbeats.targets import PerformanceTarget, Satisfaction
from repro.platform.cluster import BIG, LITTLE, ClusterSpec
from repro.platform.core_types import cortex_a7, cortex_a15
from repro.platform.spec import PlatformSpec


class TestDistanceBoundary:
    def test_candidate_at_exactly_d_is_kept(self, xu3):
        # Interior point so no window edge interferes with the prune.
        current = from_indices(xu3, 2, 2, 4, 3)
        candidates = list(neighbourhood(xu3, current, m=4, n=4, d=2))
        distances = {current.manhattan_distance(c, xu3) for c in candidates}
        # The prune is `dist > d`: distance d itself must survive ...
        assert 2 in distances
        # ... and nothing beyond it does.
        assert max(distances) == 2

    def test_distance_counts_all_four_dimensions(self, xu3):
        current = from_indices(xu3, 2, 2, 4, 3)
        candidates = set(neighbourhood(xu3, current, m=1, n=1, d=3))
        # One step in three dimensions: distance exactly 3 — kept.
        assert from_indices(xu3, 3, 3, 5, 3) in candidates
        # One step in all four dimensions: distance 4 — pruned.
        assert from_indices(xu3, 3, 3, 5, 4) not in candidates

    def test_current_state_is_always_a_candidate(self, xu3):
        current = from_indices(xu3, 1, 3, 2, 2)
        assert current in set(neighbourhood(xu3, current, m=1, n=1, d=1))


class TestWindowClipping:
    def test_window_clips_at_spec_maximum(self, xu3):
        # From the all-max state with m=0 nothing can move down, and the
        # clamp stops every upward step: the sweep degenerates to {max}.
        current = max_state(xu3)
        assert list(neighbourhood(xu3, current, m=0, n=4, d=8)) == [current]

    def test_window_clips_at_spec_minimum(self, xu3):
        # Minimum corner: 1 little core at both minimum frequencies.
        # m=4 reaches below every range; the clamp (and the zero-core
        # exclusion for c_little) leaves only the corner itself.
        current = from_indices(xu3, 0, 1, 0, 0)
        assert list(neighbourhood(xu3, current, m=4, n=0, d=8)) == [current]

    def test_all_candidates_are_valid_states(self, xu3):
        current = from_indices(xu3, 4, 0, 8, 0)
        for candidate in neighbourhood(xu3, current, m=4, n=4, d=7):
            candidate.validate(xu3)  # raises if any clamp failed

    def test_zero_core_state_never_yielded(self, xu3):
        current = from_indices(xu3, 1, 1, 0, 0)
        for candidate in neighbourhood(xu3, current, m=4, n=4, d=8):
            assert candidate.c_big + candidate.c_little >= 1


@pytest.fixture(scope="module")
def tiny_spec():
    """A 1-big + 1-little platform (smallest legal HMP machine)."""
    little = ClusterSpec(
        name=LITTLE,
        core_type=cortex_a7(freqs_mhz=(800, 1000)),
        n_cores=1,
        first_core_id=0,
        uncore_power_w=0.05,
    )
    big = ClusterSpec(
        name=BIG,
        core_type=cortex_a15(freqs_mhz=(800, 1200)),
        n_cores=1,
        first_core_id=1,
        uncore_power_w=0.12,
    )
    return PlatformSpec(name="test-1x1", big=big, little=little)


class TestOnePlusOnePlatform:
    def test_neighbourhood_stays_in_tiny_space(self, tiny_spec):
        current = max_state(tiny_spec)
        candidates = list(
            neighbourhood(tiny_spec, current, m=4, n=4, d=7)
        )
        assert candidates
        for c in candidates:
            assert c.c_big in (0, 1)
            assert c.c_little in (0, 1)
            assert c.c_big + c.c_little >= 1
        # 3 core combos x 2 big freqs x 2 little freqs, all within d=7.
        assert len(set(candidates)) == 12

    def test_search_runs_on_tiny_platform(self, tiny_spec):
        power = calibrate(tiny_spec)
        perf = PerformanceEstimator()
        current = max_state(tiny_spec)
        target = PerformanceTarget(0.9, 1.0, 1.1)
        result = get_next_sys_state(
            spec=tiny_spec,
            current=current,
            observed_rate=2.0,
            n_threads=2,
            target=target,
            space=HARS_E.space_for(Satisfaction.OVERPERF),
            perf_estimator=perf,
            power_estimator=power,
        )
        result.state.validate(tiny_spec)
        assert 1 <= result.states_explored <= 12

    def test_single_cluster_states_searchable(self, tiny_spec):
        power = calibrate(tiny_spec)
        perf = PerformanceEstimator()
        current = SystemState(0, 1, 800, 800)  # little-only corner
        target = PerformanceTarget(1.8, 2.0, 2.2)
        result = get_next_sys_state(
            spec=tiny_spec,
            current=current,
            observed_rate=0.5,
            n_threads=2,
            target=target,
            space=HARS_E.space_for(Satisfaction.UNDERPERF),
            perf_estimator=perf,
            power_estimator=power,
        )
        grown = result.state
        grown.validate(tiny_spec)
        # Underperforming from the minimum corner must grow the state.
        assert (grown.c_big, grown.c_little) != (0, 0)
