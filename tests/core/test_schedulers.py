"""Unit tests for the chunk-based and interleaving thread schedulers."""

import pytest

from repro.core.assignment import assign_threads
from repro.core.schedulers import (
    CHUNK,
    INTERLEAVED,
    apply_assignment,
    chunk_split,
    interleaved_split,
)
from repro.errors import SchedulingError
from repro.heartbeats.targets import PerformanceTarget
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile


def _app(n_threads=8):
    model = DataParallelWorkload(
        WorkloadTraits(name="t"), n_threads, ConstantProfile(1.0), 4
    )
    return SimApp("t", model, PerformanceTarget(1.0, 1.0, 1.0))


class TestChunkSplit:
    def test_figure_3_2a_layout(self):
        # 8 threads, T_B = T_L = 4: threads 0–3 little, 4–7 big.
        flags = chunk_split(8, t_big=4)
        assert flags == [False] * 4 + [True] * 4

    def test_all_big(self):
        assert chunk_split(4, 4) == [True] * 4

    def test_all_little(self):
        assert chunk_split(4, 0) == [False] * 4

    def test_consecutive_little_block(self):
        flags = chunk_split(8, t_big=6)
        assert flags == [False, False] + [True] * 6

    def test_validation(self):
        with pytest.raises(SchedulingError):
            chunk_split(0, 0)
        with pytest.raises(SchedulingError):
            chunk_split(4, 5)


class TestInterleavedSplit:
    def test_figure_3_2b_layout(self):
        # T_B = T_L = 4: strict alternation starting little.
        flags = interleaved_split(8, t_big=4)
        assert flags == [False, True] * 4

    def test_big_count_preserved(self):
        for t_big in range(9):
            assert sum(interleaved_split(8, t_big)) == t_big

    def test_uneven_ratio_spreads_evenly(self):
        flags = interleaved_split(8, t_big=6)
        # No more than one little thread in any window of 4.
        littles = [i for i, big in enumerate(flags) if not big]
        assert len(littles) == 2
        assert abs(littles[1] - littles[0]) >= 3

    def test_no_big_threads(self):
        assert interleaved_split(4, 0) == [False] * 4


class TestApplyAssignment:
    def test_chunk_pins_blocks(self):
        app = _app()
        assignment = assign_threads(8, 4, 4, 1.0)  # 4 big / 4 little
        apply_assignment(app, assignment, (4, 5, 6, 7), (0, 1, 2, 3), CHUNK)
        for thread in app.threads[:4]:
            assert thread.affinity == frozenset({0, 1, 2, 3})
        for thread in app.threads[4:]:
            assert thread.affinity == frozenset({4, 5, 6, 7})

    def test_interleaved_alternates(self):
        app = _app()
        assignment = assign_threads(8, 4, 4, 1.0)
        apply_assignment(
            app, assignment, (4, 5, 6, 7), (0, 1, 2, 3), INTERLEAVED
        )
        masks = [t.affinity for t in app.threads]
        assert masks[0] == frozenset({0, 1, 2, 3})
        assert masks[1] == frozenset({4, 5, 6, 7})
        assert masks[2] == frozenset({0, 1, 2, 3})

    def test_subset_of_cluster_cores(self):
        app = _app()
        assignment = assign_threads(8, 2, 2, 1.5)
        apply_assignment(app, assignment, (4, 5), (0, 1), CHUNK)
        big_masks = {t.affinity for t in app.threads if t.affinity == frozenset({4, 5})}
        assert big_masks  # some threads pinned to the two big cores

    def test_missing_cores_for_assignment_raises(self):
        app = _app()
        assignment = assign_threads(8, 4, 4, 1.5)  # needs both clusters
        with pytest.raises(SchedulingError):
            apply_assignment(app, assignment, (), (0, 1, 2, 3), CHUNK)

    def test_unknown_policy_rejected(self):
        app = _app()
        assignment = assign_threads(8, 4, 0, 1.5)
        with pytest.raises(SchedulingError):
            apply_assignment(app, assignment, (4, 5, 6, 7), (), "random")
