"""Unit tests for the performance and power estimators + calibration."""

import pytest

from repro.core.calibration import calibrate, fit_coefficients
from repro.core.perf_estimator import DEFAULT_R0, PerformanceEstimator
from repro.core.power_estimator import LinearCoefficients, PowerEstimator
from repro.core.state import SystemState
from repro.errors import CalibrationError, EstimationError
from repro.platform.cluster import BIG, LITTLE
from repro.workloads.microbench import ProfilePoint


class TestPerformanceEstimator:
    def test_default_r0_is_paper_value(self):
        assert DEFAULT_R0 == 1.5

    def test_per_core_speeds_scale_with_frequency(self):
        est = PerformanceEstimator()
        s_big, s_little = est.per_core_speeds(SystemState(4, 4, 1600, 1300))
        assert s_big == pytest.approx(1.5 * 1.6)
        assert s_little == pytest.approx(1.3)

    def test_capacity_monotonic_in_cores(self):
        est = PerformanceEstimator()
        caps = [
            est.estimate(SystemState(cb, 4, 1600, 1300), 8).capacity
            for cb in range(5)
        ]
        assert caps == sorted(caps)

    def test_capacity_weakly_monotonic_in_frequency(self):
        # Weakly monotonic: when the little cluster is the critical path,
        # raising the big frequency cannot help (and must not hurt).
        est = PerformanceEstimator()
        caps = [
            est.estimate(SystemState(4, 4, f, 1300), 8).capacity
            for f in range(800, 1601, 100)
        ]
        for before, after in zip(caps, caps[1:]):
            assert after >= before - 1e-9
        assert caps[-1] > caps[0]

    def test_single_cluster_capacity(self):
        est = PerformanceEstimator()
        # 8 threads on 4 little cores at f0: capacity = 4·S_L = 4.
        cap = est.estimate(SystemState(0, 4, 800, 1000), 8).capacity
        assert cap == pytest.approx(4.0)

    def test_utilizations_bounded_and_balanced(self):
        est = PerformanceEstimator()
        perf = est.estimate(SystemState(4, 4, 1600, 1300), 8)
        assert 0 < perf.util_big <= 1.0
        assert 0 < perf.util_little <= 1.0
        # t_f = max(t_B, t_L) so at least one cluster is the critical path.
        assert max(perf.util_big, perf.util_little) == pytest.approx(1.0)

    def test_estimate_rate_transfer(self):
        est = PerformanceEstimator()
        current = SystemState(4, 4, 1600, 1300)
        half = SystemState(4, 4, 800, 800)
        rate = est.estimate_rate(half, current, observed_rate=2.0, n_threads=8)
        cap_ratio = (
            est.estimate(half, 8).capacity / est.estimate(current, 8).capacity
        )
        assert rate == pytest.approx(2.0 * cap_ratio)

    def test_estimate_rate_identity(self):
        est = PerformanceEstimator()
        state = SystemState(2, 2, 1000, 1000)
        assert est.estimate_rate(state, state, 3.3, 8) == pytest.approx(3.3)

    def test_invalid_observed_rate(self):
        est = PerformanceEstimator()
        state = SystemState(2, 2, 1000, 1000)
        with pytest.raises(EstimationError):
            est.estimate_rate(state, state, 0.0, 8)

    def test_invalid_parameters(self):
        with pytest.raises(EstimationError):
            PerformanceEstimator(r0=0.0)


class TestFitCoefficients:
    def _points(self, alpha=0.5, beta=1.0):
        return [
            ProfilePoint(
                cluster=BIG,
                freq_mhz=1000,
                cores_used=c,
                utilization=u,
                watts=alpha * c * u + beta,
            )
            for c in (1, 2, 3, 4)
            for u in (0.25, 0.5, 1.0)
        ]

    def test_exact_fit_of_linear_data(self):
        fitted = fit_coefficients(self._points(alpha=0.7, beta=0.3))
        coeffs = fitted[(BIG, 1000)]
        assert coeffs.alpha == pytest.approx(0.7)
        assert coeffs.beta == pytest.approx(0.3)
        assert coeffs.r_squared == pytest.approx(1.0)

    def test_empty_points_rejected(self):
        with pytest.raises(CalibrationError):
            fit_coefficients([])

    def test_degenerate_group_rejected(self):
        points = [
            ProfilePoint(BIG, 1000, 1, 0.5, 1.0),
            ProfilePoint(BIG, 1000, 1, 0.5, 1.1),
        ]
        with pytest.raises(CalibrationError):
            fit_coefficients(points)


class TestPowerEstimator:
    def test_predict_is_linear(self):
        coeffs = LinearCoefficients(alpha=0.5, beta=1.0)
        assert coeffs.predict(4, 0.5) == pytest.approx(2.0)
        assert coeffs.predict(0, 0.0) == pytest.approx(1.0)

    def test_predict_validates(self):
        coeffs = LinearCoefficients(alpha=0.5, beta=1.0)
        with pytest.raises(EstimationError):
            coeffs.predict(-1, 0.5)
        with pytest.raises(EstimationError):
            coeffs.predict(1, 1.5)

    def test_missing_operating_point_raises(self):
        est = PowerEstimator({(BIG, 1000): LinearCoefficients(0.5, 1.0)})
        with pytest.raises(EstimationError):
            est.coefficients(BIG, 1100)

    def test_empty_table_rejected(self):
        with pytest.raises(EstimationError):
            PowerEstimator({})


class TestCalibration:
    def test_covers_every_operating_point(self, xu3, power_estimator):
        expected = {(BIG, f) for f in xu3.big.frequencies_mhz} | {
            (LITTLE, f) for f in xu3.little.frequencies_mhz
        }
        assert set(power_estimator.fitted_points) == expected

    def test_fit_quality_is_high(self, power_estimator, xu3):
        # The ground truth is linear in C·U per (cluster, freq), so the
        # fit should be near-perfect.
        for key in power_estimator.fitted_points:
            assert power_estimator.coefficients(*key).r_squared > 0.99

    def test_alpha_grows_with_frequency(self, power_estimator, xu3):
        alphas = [
            power_estimator.coefficients(BIG, f).alpha
            for f in xu3.big.frequencies_mhz
        ]
        assert alphas == sorted(alphas)

    def test_big_costs_more_than_little(self, power_estimator):
        assert (
            power_estimator.coefficients(BIG, 1300).alpha
            > power_estimator.coefficients(LITTLE, 1300).alpha
        )

    def test_estimate_against_ground_truth(self, xu3, power_estimator):
        """Estimator vs ground truth within ~20 % for a busy cluster."""
        from repro.platform.machine import Machine
        from repro.platform.power import CoreActivity, PowerModel

        est = PerformanceEstimator()
        state = SystemState(4, 0, 1200, 800)
        perf = est.estimate(state, 8)
        predicted = power_estimator.estimate(state, perf)

        machine = Machine(xu3)
        machine.set_freq_mhz(BIG, 1200)
        machine.set_freq_mhz(LITTLE, 800)
        actual = PowerModel(xu3).platform_power(
            machine,
            {c: CoreActivity(utilization=1.0) for c in (4, 5, 6, 7)},
        )
        # The estimator omits board power, which the sensor channel
        # separates too; compare against big + little.
        assert predicted == pytest.approx(
            actual[BIG] + actual[LITTLE], rel=0.2
        )

    def test_cache_returns_same_object(self, xu3):
        assert calibrate(xu3) is calibrate(xu3)
