"""Algorithm 2's guard filter: counted vetoes, separate from pruning.

The structural ``candidate_filter`` (MP-HARS partitions) rejects
silently; the guardrail ``guard_filter`` (budget caps) reports its
rejections as ``SearchResult.filtered`` so telemetry can distinguish
"pruned by Manhattan distance" from "vetoed by a budget".
"""

import pytest

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E
from repro.core.search import get_next_sys_state
from repro.core.state import from_indices, neighbourhood
from repro.heartbeats.targets import PerformanceTarget, Satisfaction

TARGET = PerformanceTarget(0.95, 1.0, 1.05)


def _search(xu3, power_estimator, **kwargs):
    current = from_indices(xu3, 2, 2, 4, 3)
    defaults = dict(
        spec=xu3,
        current=current,
        observed_rate=0.8,
        n_threads=8,
        target=TARGET,
        space=HARS_E.space_for(Satisfaction.UNDERPERF),
        perf_estimator=PerformanceEstimator(),
        power_estimator=power_estimator,
    )
    defaults.update(kwargs)
    return current, get_next_sys_state(**defaults)


class TestFilteredCounter:
    def test_unguarded_search_reports_zero_filtered(self, xu3, power_estimator):
        _, result = _search(xu3, power_estimator)
        assert result.filtered == 0
        assert result.pruned > 0

    def test_vetoes_are_counted(self, xu3, power_estimator):
        current, plain = _search(xu3, power_estimator)
        vetoed = []

        def guard(candidate, cur):
            allowed = candidate.c_big <= current.c_big
            if not allowed:
                vetoed.append(candidate)
            return allowed

        _, result = _search(xu3, power_estimator, guard_filter=guard)
        assert result.filtered == len(vetoed) > 0
        # Every estimated candidate passed the guard; the explored count
        # shrinks by exactly the vetoed share (no estimation failures
        # in this neighbourhood).
        assert result.states_explored == plain.states_explored - len(vetoed)
        assert result.state.c_big <= current.c_big

    def test_filtered_is_separate_from_pruned(self, xu3, power_estimator):
        _, plain = _search(xu3, power_estimator)
        _, guarded = _search(
            xu3, power_estimator, guard_filter=lambda cand, cur: False
        )
        # The distance prune happens before the guard and is unchanged.
        assert guarded.pruned == plain.pruned
        assert guarded.filtered > 0

    def test_structural_filter_rejections_stay_uncounted(
        self, xu3, power_estimator
    ):
        _, result = _search(
            xu3,
            power_estimator,
            candidate_filter=lambda cand, cur: cand.c_big <= 2,
        )
        assert result.filtered == 0

    def test_guard_runs_after_the_structural_filter(self, xu3, power_estimator):
        structurally_seen = []

        def structural(candidate, cur):
            structurally_seen.append(candidate)
            return candidate.c_big <= 2

        guard_seen = []

        def guard(candidate, cur):
            guard_seen.append(candidate)
            return True

        _search(
            xu3,
            power_estimator,
            candidate_filter=structural,
            guard_filter=guard,
        )
        # The guard only ever sees structurally-admissible candidates.
        assert guard_seen == [c for c in structurally_seen if c.c_big <= 2]


class TestForcedFallback:
    def test_total_veto_forces_a_hold(self, xu3, power_estimator):
        current, result = _search(
            xu3, power_estimator, guard_filter=lambda cand, cur: False
        )
        assert result.forced_fallback
        assert result.state == current
        assert result.states_explored == 0
        # Every candidate in the box was vetoed and counted.
        box = list(
            neighbourhood(
                xu3,
                current,
                HARS_E.space_for(Satisfaction.UNDERPERF).m,
                HARS_E.space_for(Satisfaction.UNDERPERF).n,
                HARS_E.space_for(Satisfaction.UNDERPERF).d,
            )
        )
        assert result.filtered == len(box)

    def test_current_state_admissible_guard_never_falls_back(
        self, xu3, power_estimator
    ):
        current, result = _search(
            xu3,
            power_estimator,
            guard_filter=lambda cand, cur: cand == cur,
        )
        assert not result.forced_fallback
        assert result.state == current
        assert result.states_explored == 1
