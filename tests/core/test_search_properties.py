"""Property-based tests for the Algorithm 2 search (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import SearchSpace
from repro.core.search import get_next_sys_state
from repro.core.state import from_indices
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import odroid_xu3

_SPEC = odroid_xu3()
_PERF = PerformanceEstimator()
_POWER = calibrate(_SPEC)

_CB = st.integers(min_value=0, max_value=4)
_CL = st.integers(min_value=0, max_value=4)
_IFB = st.integers(min_value=0, max_value=8)
_IFL = st.integers(min_value=0, max_value=5)
_RATE = st.floats(min_value=0.1, max_value=10.0)
_TARGET_CENTER = st.floats(min_value=0.2, max_value=8.0)
_MN = st.integers(min_value=0, max_value=4)
_D = st.integers(min_value=1, max_value=9)


@given(
    cb=_CB, cl=_CL, ifb=_IFB, ifl=_IFL,
    rate=_RATE, center=_TARGET_CENTER,
    m=_MN, n=_MN, d=_D,
)
@settings(max_examples=40, deadline=None)
def test_search_always_returns_valid_reachable_state(
    cb, cl, ifb, ifl, rate, center, m, n, d
):
    if cb == 0 and cl == 0:
        return
    current = from_indices(_SPEC, cb, cl, ifb, ifl)
    target = PerformanceTarget(0.9 * center, center, 1.1 * center)
    result = get_next_sys_state(
        spec=_SPEC,
        current=current,
        observed_rate=rate,
        n_threads=8,
        target=target,
        space=SearchSpace(m=m, n=n, d=d),
        perf_estimator=_PERF,
        power_estimator=_POWER,
    )
    chosen = result.state
    chosen.validate(_SPEC)
    # Within the box and the Manhattan bound.
    assert current.manhattan_distance(chosen, _SPEC) <= d
    for got, ref in zip(chosen.indices(_SPEC), current.indices(_SPEC)):
        assert ref - m <= got <= ref + n
    # Explored count is bounded by the (clamped) box size.
    assert 1 <= result.states_explored <= (m + n + 1) ** 4
    # The chosen candidate is never worse than staying put under the
    # selection order (feasibility first, then perf/watt or rate).
    assert result.best.est_power > 0


@given(
    cb=st.integers(min_value=1, max_value=4),
    ifb=_IFB, ifl=_IFL, rate=_RATE,
)
@settings(max_examples=30, deadline=None)
def test_filter_is_always_respected(cb, ifb, ifl, rate):
    current = from_indices(_SPEC, cb, 2, ifb, ifl)
    target = PerformanceTarget(0.9, 1.0, 1.1)

    def no_core_growth(candidate, cur):
        return (
            candidate.c_big <= cur.c_big
            and candidate.c_little <= cur.c_little
        )

    result = get_next_sys_state(
        spec=_SPEC,
        current=current,
        observed_rate=rate,
        n_threads=8,
        target=target,
        space=SearchSpace(m=4, n=4, d=7),
        perf_estimator=_PERF,
        power_estimator=_POWER,
        candidate_filter=no_core_growth,
    )
    assert result.state.c_big <= current.c_big
    assert result.state.c_little <= current.c_little
