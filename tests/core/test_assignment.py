"""Unit and property tests for Table 3.1 thread assignment."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.assignment import assign_threads, cluster_times
from repro.errors import EstimationError


class TestPaperTable:
    """The four rows of Table 3.1 with r = 1.5, C_B = C_L = 4."""

    def test_row1_few_threads_each_on_own_big_core(self):
        a = assign_threads(3, 4, 4, 1.5)
        assert (a.t_big, a.t_little) == (3, 0)
        assert (a.used_big, a.used_little) == (3, 0)

    def test_row2_big_timeshare_regime(self):
        a = assign_threads(5, 4, 4, 1.5)
        assert (a.t_big, a.t_little) == (5, 0)
        assert (a.used_big, a.used_little) == (4, 0)

    def test_row3_spill_to_little(self):
        # T = 8: T_B = ⌊1.5·4⌋ = 6, T_L = 2, C_L,U = 2.
        a = assign_threads(8, 4, 4, 1.5)
        assert (a.t_big, a.t_little) == (6, 2)
        assert (a.used_big, a.used_little) == (4, 2)

    def test_row4_both_clusters_saturated(self):
        # T = 12 > r·C_B + C_L = 10: T_B = ⌈6/10·12⌉ = 8.
        a = assign_threads(12, 4, 4, 1.5)
        assert (a.t_big, a.t_little) == (8, 4)
        assert (a.used_big, a.used_little) == (4, 4)

    def test_boundary_t_equals_r_cb(self):
        a = assign_threads(6, 4, 4, 1.5)
        assert (a.t_big, a.t_little) == (6, 0)

    def test_boundary_t_equals_r_cb_plus_cl(self):
        a = assign_threads(10, 4, 4, 1.5)
        assert (a.t_big, a.t_little) == (6, 4)
        assert (a.used_big, a.used_little) == (4, 4)


class TestEdgeCases:
    def test_no_big_cores(self):
        a = assign_threads(8, 0, 4, 1.5)
        assert (a.t_big, a.t_little) == (0, 8)
        assert (a.used_big, a.used_little) == (0, 4)

    def test_no_little_cores(self):
        a = assign_threads(8, 4, 0, 1.5)
        assert (a.t_big, a.t_little) == (8, 0)
        assert (a.used_big, a.used_little) == (4, 0)

    def test_ratio_one_balances_by_count(self):
        a = assign_threads(8, 4, 4, 1.0)
        assert a.t_big == 4 and a.t_little == 4

    def test_ratio_below_one_mirrors(self):
        # Little twice as fast as big: mirror of r = 2 with swapped roles.
        fast_little = assign_threads(8, 4, 4, 0.5)
        fast_big = assign_threads(8, 4, 4, 2.0)
        assert fast_little.t_big == fast_big.t_little
        assert fast_little.t_little == fast_big.t_big
        assert fast_little.used_big == fast_big.used_little

    def test_invalid_inputs_rejected(self):
        with pytest.raises(EstimationError):
            assign_threads(0, 4, 4, 1.5)
        with pytest.raises(EstimationError):
            assign_threads(4, 0, 0, 1.5)
        with pytest.raises(EstimationError):
            assign_threads(4, 4, 4, 0.0)


_THREADS = st.integers(min_value=1, max_value=64)
_CORES = st.integers(min_value=0, max_value=8)
_RATIO = st.floats(min_value=0.25, max_value=4.0)


@given(t=_THREADS, cb=_CORES, cl=_CORES, r=_RATIO)
def test_assignment_invariants(t, cb, cl, r):
    if cb == 0 and cl == 0:
        return
    a = assign_threads(t, cb, cl, r)
    # Conservation: every thread is assigned exactly once.
    assert a.t_big + a.t_little == t
    # A cluster with no cores gets no threads.
    if cb == 0:
        assert a.t_big == 0
    if cl == 0:
        assert a.t_little == 0
    # Used cores never exceed allocation or thread count.
    assert 0 <= a.used_big <= min(cb, max(a.t_big, 0))
    assert 0 <= a.used_little <= min(cl, max(a.t_little, 0))
    # Threads imply used cores.
    assert (a.t_big > 0) == (a.used_big > 0)
    assert (a.t_little > 0) == (a.used_little > 0)


@given(t=_THREADS, cb=_CORES, cl=_CORES, r=st.floats(min_value=1.0, max_value=4.0))
def test_assignment_near_minimizes_tf_over_alternatives(t, cb, cl, r):
    """The table's split is near-optimal against moving one thread.

    Rows 1–3 are exactly optimal.  Row 4 (both clusters saturated)
    rounds the continuous optimum ``T·r·C_B/(r·C_B + C_L)`` with a
    ceiling, which a one-thread move can beat when a cluster is tiny —
    this is a property of the *paper's* table, so we only require the
    result to be within 2× of the single-move alternatives there.
    """
    if cb == 0 or cl == 0:
        return
    a = assign_threads(t, cb, cl, r)
    s_big, s_little = r, 1.0
    _, _, t_f = cluster_times(a, 1.0, t, cb, cl, s_big, s_little)
    saturated_row = t > r * cb + cl  # row 4

    for delta in (-1, 1):
        nb = a.t_big + delta
        nl = t - nb
        if nb < 0 or nl < 0:
            continue
        alt = type(a)(
            t_big=nb,
            t_little=nl,
            used_big=min(nb, cb),
            used_little=min(nl, cl),
        )
        _, _, alt_tf = cluster_times(alt, 1.0, t, cb, cl, s_big, s_little)
        if saturated_row:
            assert t_f <= 2.0 * alt_tf + 1e-9
        else:
            assert t_f <= alt_tf + 1e-9


class TestClusterTimes:
    def test_single_cluster_time(self):
        a = assign_threads(4, 4, 0, 1.5)
        t_b, t_l, t_f = cluster_times(a, 8.0, 4, 4, 0, 2.0, 1.0)
        # Each thread: share 2.0 at speed 2.0 → 1 s.
        assert t_b == pytest.approx(1.0)
        assert t_l == 0.0
        assert t_f == pytest.approx(1.0)

    def test_timeshared_cluster_time(self):
        a = assign_threads(8, 4, 0, 1.5)
        t_b, _, _ = cluster_times(a, 8.0, 8, 4, 0, 2.0, 1.0)
        # 8 threads × 1.0 share on 4 cores of speed 2: 1 s.
        assert t_b == pytest.approx(1.0)

    def test_tf_is_max(self):
        a = assign_threads(8, 4, 4, 1.5)
        t_b, t_l, t_f = cluster_times(a, 8.0, 8, 4, 4, 1.5, 1.0)
        assert t_f == max(t_b, t_l)

    def test_threads_without_capacity_raise(self):
        a = assign_threads(8, 4, 4, 1.5)
        with pytest.raises(EstimationError):
            cluster_times(a, 8.0, 8, 4, 0, 1.5, 1.0)

    def test_balanced_split_nearly_equalizes_clusters(self):
        # With the paper's parameters the two clusters finish within the
        # granularity of one thread of work.
        a = assign_threads(10, 4, 4, 1.5)
        t_b, t_l, t_f = cluster_times(a, 10.0, 10, 4, 4, 1.5, 1.0)
        assert abs(t_b - t_l) / t_f < 0.35
