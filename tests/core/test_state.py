"""Unit and property tests for the system-state space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import (
    SystemState,
    from_indices,
    max_state,
    neighbourhood,
)
from repro.errors import ConfigurationError
from repro.platform.spec import odroid_xu3

_SPEC = odroid_xu3()


class TestSystemState:
    def test_validate_accepts_valid_state(self, xu3):
        SystemState(2, 3, 1200, 1000).validate(xu3)

    def test_validate_rejects_bad_counts(self, xu3):
        with pytest.raises(ConfigurationError):
            SystemState(5, 0, 800, 800).validate(xu3)
        with pytest.raises(ConfigurationError):
            SystemState(0, 0, 800, 800).validate(xu3)
        with pytest.raises(ConfigurationError):
            SystemState(-1, 2, 800, 800).validate(xu3)

    def test_validate_rejects_bad_frequency(self, xu3):
        from repro.errors import FrequencyError

        with pytest.raises(FrequencyError):
            SystemState(1, 1, 850, 800).validate(xu3)

    def test_indices(self, xu3):
        assert SystemState(2, 3, 1200, 1000).indices(xu3) == (2, 3, 4, 2)

    def test_manhattan_distance(self, xu3):
        a = SystemState(4, 4, 1600, 1300)
        b = SystemState(2, 4, 1400, 1200)
        assert a.manhattan_distance(b, xu3) == 2 + 0 + 2 + 1
        assert a.manhattan_distance(a, xu3) == 0

    def test_describe(self):
        assert SystemState(2, 4, 1400, 1100).describe() == "2B@1400+4L@1100"

    def test_max_state(self, xu3):
        state = max_state(xu3)
        assert state == SystemState(4, 4, 1600, 1300)

    def test_from_indices_round_trip(self, xu3):
        state = from_indices(xu3, 1, 2, 3, 4)
        assert state.indices(xu3) == (1, 2, 3, 4)


class TestNeighbourhood:
    def test_incremental_down_space(self, xu3):
        """HARS-I overperform space: m=1, n=0, d=1 — stay or one step down
        in exactly one dimension."""
        current = SystemState(2, 2, 1200, 1000)
        states = list(neighbourhood(xu3, current, m=1, n=0, d=1))
        assert current in states
        assert len(states) == 5  # self + 4 single-dim decrements
        for state in states:
            assert current.manhattan_distance(state, xu3) <= 1
            assert state.indices(xu3) <= current.indices(xu3)

    def test_incremental_up_space(self, xu3):
        current = SystemState(2, 2, 1200, 1000)
        states = list(neighbourhood(xu3, current, m=0, n=1, d=1))
        assert len(states) == 5

    def test_clamps_at_space_edges(self, xu3):
        corner = max_state(xu3)
        states = list(neighbourhood(xu3, corner, m=0, n=1, d=1))
        assert states == [corner]  # nothing above the max state

    def test_excludes_zero_core_state(self, xu3):
        current = SystemState(1, 0, 800, 800)
        states = list(neighbourhood(xu3, current, m=1, n=0, d=2))
        assert all(s.c_big + s.c_little >= 1 for s in states)

    def test_distance_prunes(self, xu3):
        current = SystemState(2, 2, 1200, 1000)
        wide = list(neighbourhood(xu3, current, m=4, n=4, d=7))
        tight = list(neighbourhood(xu3, current, m=4, n=4, d=2))
        assert len(tight) < len(wide)
        for state in wide:
            assert current.manhattan_distance(state, xu3) <= 7

    def test_invalid_parameters(self, xu3):
        current = max_state(xu3)
        with pytest.raises(ConfigurationError):
            list(neighbourhood(xu3, current, m=-1, n=0, d=1))
        with pytest.raises(ConfigurationError):
            list(neighbourhood(xu3, current, m=0, n=0, d=0))


_CB = st.integers(min_value=0, max_value=4)
_CL = st.integers(min_value=0, max_value=4)
_IFB = st.integers(min_value=0, max_value=8)
_IFL = st.integers(min_value=0, max_value=5)
_MN = st.integers(min_value=0, max_value=4)
_D = st.integers(min_value=1, max_value=9)


@given(cb=_CB, cl=_CL, ifb=_IFB, ifl=_IFL, m=_MN, n=_MN, d=_D)
@settings(max_examples=60)
def test_neighbourhood_properties(cb, cl, ifb, ifl, m, n, d):
    if cb == 0 and cl == 0:
        return
    current = from_indices(_SPEC, cb, cl, ifb, ifl)
    states = list(neighbourhood(_SPEC, current, m, n, d))
    # The current state is always a candidate; all are valid and unique
    # and within the box and distance bound.
    assert current in states
    assert len(states) == len(set(states))
    for state in states:
        state.validate(_SPEC)
        assert current.manhattan_distance(state, _SPEC) <= d
        for got, center in zip(state.indices(_SPEC), current.indices(_SPEC)):
            assert center - m <= got <= center + n
