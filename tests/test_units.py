"""Unit tests for shared unit helpers and the error hierarchy."""

import math

import pytest

import repro.errors as errors
from repro.errors import ConfigurationError, ReproError
from repro.units import (
    clamp,
    frange,
    geometric_mean,
    ghz,
    mean,
    mhz_to_ghz,
    msec,
    usec,
)


class TestConversions:
    def test_ghz_round_trip(self):
        assert ghz(1.6) == 1600
        assert mhz_to_ghz(1600) == pytest.approx(1.6)

    def test_time_helpers(self):
        assert usec(263_808) == pytest.approx(0.263808)
        assert msec(10) == pytest.approx(0.01)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_edges(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            clamp(0.5, 1.0, 0.0)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_validates(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ConfigurationError):
            mean([])

    def test_geometric_below_arithmetic(self):
        values = [1.0, 2.0, 9.0]
        assert geometric_mean(values) < mean(values)


class TestFrange:
    def test_simple_range(self):
        assert list(frange(0.0, 1.0, 0.25)) == pytest.approx(
            [0.0, 0.25, 0.5, 0.75, 1.0]
        )

    def test_robust_to_float_error(self):
        values = list(frange(0.8, 1.6, 0.1))
        assert len(values) == 9
        assert values[-1] == pytest.approx(1.6)

    def test_bad_step(self):
        with pytest.raises(ConfigurationError):
            list(frange(0.0, 1.0, 0.0))


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not ReproError:
                    assert issubclass(obj, ReproError), name

    def test_catchable_at_the_root(self):
        with pytest.raises(ReproError):
            raise errors.FrequencyError("nope")
