"""Graceful degradation end-to-end: faulted runs complete and account.

The fault layer's contract has three halves:

* **identity** — zero rates mean the fault layer vanishes: a run with
  ``FaultConfig.disabled()`` is bit-identical to one with no config;
* **completion** — the documented default fault mix never crashes a
  full HARS-E run, and every injection/recovery is announced on the bus
  in numbers that match the injector's own counters;
* **degradation policies** — delayed heartbeats arrive late but intact,
  failed DVFS writes leave the old frequency in place and back off, and
  the MAPE loop holds its last good state on degraded observations.
"""

import dataclasses

import pytest

from repro.experiments.runner import RunConfig, RunShape, run
from repro.faults import FaultConfig
from repro.heartbeats.targets import PerformanceTarget
from repro.kernel.bus import EventBus, FaultInjected, FaultRecovered, HeartbeatEmitted
from repro.platform.cluster import BIG
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile

_UNITS = 60


def _shape(seed=0):
    return RunShape("swaptions", n_units=_UNITS, seed=seed)


def _snapshot(outcome):
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


def _app(n_threads=4, n_units=30, unit_work=4.0):
    model = DataParallelWorkload(
        WorkloadTraits(name="w", big_little_ratio=1.5),
        n_threads,
        ConstantProfile(unit_work),
        n_units,
    )
    return SimApp("w", model, PerformanceTarget(0.45, 0.5, 0.55))


class TestZeroRateIdentity:
    def test_disabled_config_is_bit_identical(self, xu3):
        clean = run("hars-e", _shape(), RunConfig(spec=xu3))
        disabled = run(
            "hars-e",
            _shape(),
            RunConfig(spec=xu3, faults=FaultConfig.disabled()),
        )
        assert disabled.fault_injector is None
        assert _snapshot(disabled) == _snapshot(clean)

    def test_scaled_to_zero_is_bit_identical(self, xu3):
        clean = run("hars-e", _shape(), RunConfig(spec=xu3))
        zeroed = run(
            "hars-e",
            _shape(),
            RunConfig(spec=xu3, faults=FaultConfig.defaults().scaled(0.0)),
        )
        assert zeroed.fault_injector is None
        assert _snapshot(zeroed) == _snapshot(clean)


class TestDefaultFaultMix:
    @pytest.fixture(scope="class")
    def faulted(self, xu3):
        """One HARS-E run under the default fault mix, bus events captured."""
        events = {"injected": [], "recovered": []}
        from repro.experiments.versions import attach_single_app_version

        sim = Simulation(xu3, faults=FaultConfig.defaults())
        sim.bus.subscribe(FaultInjected, events["injected"].append)
        sim.bus.subscribe(FaultRecovered, events["recovered"].append)
        app = sim.add_app(_app(n_units=40))
        attach_single_app_version(sim, app, "hars-e")
        sim.run(until_s=900)
        return sim, app, events

    def test_run_completes_without_unhandled_exception(self, faulted):
        sim, app, _ = faulted
        assert app.is_done()
        assert len(app.log) == 40

    def test_faults_were_actually_injected(self, faulted):
        sim, _, _ = faulted
        assert sim.fault_injector.total_injected > 0

    def test_bus_trace_matches_injector_counters(self, faulted):
        sim, _, events = faulted
        inj = sim.fault_injector
        assert len(events["injected"]) == inj.total_injected
        assert len(events["recovered"]) == inj.total_recovered
        by_kind = {}
        for event in events["injected"]:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert by_kind == inj.injected

    def test_runner_surfaces_the_injector(self, xu3):
        outcome = run(
            "hars-e",
            _shape(),
            RunConfig(spec=xu3, faults=FaultConfig.defaults()),
        )
        assert outcome.fault_injector is not None
        assert outcome.fault_injector.total_injected > 0
        app = outcome.metrics.apps[0]
        assert app.heartbeats == _UNITS
        assert 0.0 < app.mean_normalized_perf <= 1.0


class TestExtremeRates:
    def test_certain_dvfs_failure_does_not_crash(self, xu3):
        faults = FaultConfig(dvfs_failure_rate=1.0)
        outcome = run("hars-e", _shape(), RunConfig(spec=xu3, faults=faults))
        assert outcome.metrics.apps[0].heartbeats == _UNITS
        inj = outcome.fault_injector
        assert inj.injected.get("dvfs", 0) > 0
        assert inj.recovered.get("dvfs", 0) == 0  # nothing ever succeeds

    def test_certain_dropout_degrades_to_integrated_power(self, xu3):
        faults = FaultConfig(sensor_dropout_rate=1.0)
        outcome = run("hars-e", _shape(), RunConfig(spec=xu3, faults=faults))
        assert outcome.metrics.apps[0].heartbeats == _UNITS
        assert outcome.metrics.avg_power_w > 0  # integrated channel intact


class TestDelayedHeartbeats:
    def test_stalled_beats_arrive_later_in_order(self, xu3):
        faults = FaultConfig(
            heartbeat_stall_rate=1.0, heartbeat_stall_ticks=5
        )
        sim = Simulation(xu3, faults=faults)
        seen = []
        sim.bus.subscribe(
            HeartbeatEmitted, lambda e: seen.append(e.heartbeat.index)
        )
        app = sim.add_app(_app(n_units=10))
        sim.run(until_s=600)
        # Ground truth: every beat is in the log at its true time.
        assert len(app.log) == 10
        # Observation: delivered beats arrive in emission order, and
        # stalls near the end may leave beats undelivered at exit.
        assert seen == sorted(seen)
        assert len(seen) <= 10
        inj = sim.fault_injector
        assert inj.injected["heartbeat-stall"] == 10
        assert inj.recovered.get("heartbeat-stall", 0) == len(seen)


class TestActuatorRetry:
    def test_failed_dvfs_write_holds_old_frequency(self, xu3, power_estimator):
        sim = Simulation(xu3, faults=FaultConfig(dvfs_failure_rate=1.0))
        before = sim.dvfs.current(BIG)
        assert sim.actuator.set_frequency(BIG, 1000) is False
        assert sim.dvfs.current(BIG) == before
        assert sim.actuator.failed_actuations == 1
        # All four attempts announced.
        assert sim.fault_injector.injected["dvfs"] == 1 + sim.actuator.max_retries

    def test_backoff_skips_writes_until_window_passes(self, xu3):
        sim = Simulation(xu3, faults=FaultConfig(dvfs_failure_rate=1.0))
        sim.actuator.set_frequency(BIG, 1000)
        skipped_before = sim.actuator.skipped_actuations
        assert sim.actuator.set_frequency(BIG, 1000) is False
        assert sim.actuator.skipped_actuations == skipped_before + 1
        # No new rolls while backing off.
        assert sim.fault_injector.injected["dvfs"] == 1 + sim.actuator.max_retries

    def test_invalid_frequency_still_raises_under_faults(self, xu3):
        from repro.errors import FrequencyError

        sim = Simulation(xu3, faults=FaultConfig(dvfs_failure_rate=1.0))
        with pytest.raises(FrequencyError):
            sim.actuator.set_frequency(BIG, 12345)


class TestHoldLastGoodState:
    def test_nonpositive_rate_holds(self, xu3, power_estimator):
        from repro.core.manager import HarsManager
        from repro.core.perf_estimator import PerformanceEstimator
        from repro.core.policy import HARS_E

        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=30))
        manager = HarsManager(
            app.name, HARS_E, PerformanceEstimator(), power_estimator
        )
        sim.add_controller(manager)
        sim.run(until_s=600)
        assert app.is_done()
        # A healthy run never holds.
        assert manager.held_cycles == 0

    def test_stale_observations_hold(self, xu3, power_estimator):
        from repro.core.manager import HarsManager
        from repro.core.perf_estimator import PerformanceEstimator
        from repro.core.policy import HARS_E

        # Long stalls + a tight staleness bound: some adaptation cycles
        # must fire on observations older than the bound and hold.
        sim = Simulation(
            xu3,
            faults=FaultConfig(
                heartbeat_stall_rate=0.5, heartbeat_stall_ticks=80, seed=5
            ),
        )
        app = sim.add_app(_app(n_units=40))
        manager = HarsManager(
            app.name,
            HARS_E,
            PerformanceEstimator(),
            power_estimator,
            stale_after_s=0.3,
        )
        sim.add_controller(manager)
        sim.run(until_s=900)
        assert app.is_done()
        assert manager.held_cycles > 0
