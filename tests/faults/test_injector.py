"""FaultInjector behaviour: determinism, per-channel faults, bus events."""

import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.kernel.bus import EventBus, FaultInjected, FaultRecovered

WATTS = {"big": 3.0, "little": 1.0, "board": 0.5, "total": 4.5}


def make(config):
    bus = EventBus()
    injected, recovered = [], []
    bus.subscribe(FaultInjected, injected.append)
    bus.subscribe(FaultRecovered, recovered.append)
    return FaultInjector(config, bus), injected, recovered


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        cfg = FaultConfig.defaults(seed=42)
        a, _, _ = make(cfg)
        b, _, _ = make(cfg)
        series_a = [a.filter_power(i * 0.26, WATTS) for i in range(200)]
        series_b = [b.filter_power(i * 0.26, WATTS) for i in range(200)]
        assert series_a == series_b
        assert a.injected == b.injected

    def test_different_seed_different_schedule(self):
        a, _, _ = make(FaultConfig.defaults(seed=1))
        b, _, _ = make(FaultConfig.defaults(seed=2))
        series_a = [a.filter_power(i * 0.26, WATTS) for i in range(200)]
        series_b = [b.filter_power(i * 0.26, WATTS) for i in range(200)]
        assert series_a != series_b


class TestSensorFaults:
    def test_dropout_returns_none_then_recovers(self):
        inj, injected, recovered = make(
            FaultConfig(sensor_dropout_rate=1.0, seed=0)
        )
        assert inj.filter_power(0.26, WATTS) is None
        assert injected[-1].kind == "sensor-dropout"
        # Rate 1 keeps dropping; a fresh injector with rate 0 after one
        # drop exercises the recovery edge instead:
        inj2, _, recovered2 = make(FaultConfig(sensor_dropout_rate=1.0, seed=0))
        assert inj2.filter_power(0.26, WATTS) is None
        inj2.config = FaultConfig(seed=0)  # faults stop
        assert inj2.filter_power(0.52, WATTS) == WATTS
        assert recovered2[-1].kind == "sensor-dropout"
        assert inj2.total_recovered == 1

    def test_stuck_freezes_reading_for_episode(self):
        inj, injected, recovered = make(
            FaultConfig(sensor_stuck_rate=1.0, sensor_stuck_samples=3, seed=0)
        )
        first = inj.filter_power(0.26, WATTS)
        assert first == WATTS
        assert injected[-1].kind == "sensor-stuck"
        hotter = {k: v * 2 for k, v in WATTS.items()}
        # Next two samples stay frozen at the episode-start reading.
        assert inj.filter_power(0.52, hotter) == WATTS
        assert inj.filter_power(0.79, hotter) == WATTS
        assert recovered[-1].kind == "sensor-stuck"
        assert inj.injected["sensor-stuck"] == 1
        assert inj.recovered["sensor-stuck"] == 1

    def test_noise_scales_all_channels_equally(self):
        inj, injected, _ = make(
            FaultConfig(sensor_noise_rate=1.0, sensor_noise_std=0.5, seed=3)
        )
        noisy = inj.filter_power(0.26, WATTS)
        assert injected[-1].kind == "sensor-noise"
        factors = {ch: noisy[ch] / WATTS[ch] for ch in WATTS}
        assert len(set(round(f, 12) for f in factors.values())) == 1
        assert all(f >= 0 for f in factors.values())

    def test_clean_sample_passes_through_unchanged(self):
        inj, injected, recovered = make(FaultConfig.defaults().scaled(0.0))
        # A disabled config never rolls: identical object semantics.
        assert inj.filter_power(0.26, WATTS) == WATTS
        assert not injected and not recovered


class TestThermalRamp:
    def _ramp_config(self, samples=5, heat=2.0):
        return FaultConfig(
            thermal_ramp_rate=1.0,
            thermal_ramp_samples=samples,
            thermal_ramp_heat_w=heat,
            seed=0,
        )

    def test_triangular_excursion_on_board_and_total(self):
        inj, injected, recovered = make(self._ramp_config())
        extras = []
        for i in range(5):
            observed = inj.filter_power(0.26 * (i + 1), WATTS)
            extras.append(observed["total"] - WATTS["total"])
            # The cluster rails never heat: the excursion is ambient.
            assert observed["big"] == WATTS["big"]
            assert observed["little"] == WATTS["little"]
            assert observed["board"] - WATTS["board"] == pytest.approx(
                extras[-1]
            )
        # Ramp up to the peak at the middle, back down to zero.
        assert extras == pytest.approx([0.0, 1.0, 2.0, 1.0, 0.0])
        assert injected[0].kind == "thermal-ramp"
        assert recovered[-1].kind == "thermal-ramp"

    def test_single_sample_episode_is_the_peak(self):
        inj, _, _ = make(self._ramp_config(samples=1))
        observed = inj.filter_power(0.26, WATTS)
        assert observed["total"] == pytest.approx(WATTS["total"] + 2.0)
        assert inj.recovered.get("thermal-ramp") == 1

    def test_additivity_of_rails_is_preserved(self):
        inj, _, _ = make(self._ramp_config())
        for i in range(5):
            observed = inj.filter_power(0.26 * (i + 1), WATTS)
            assert observed["total"] == pytest.approx(
                observed["big"] + observed["little"] + observed["board"]
            )

    def test_episodes_are_deterministic_per_seed(self):
        cfg = FaultConfig(thermal_ramp_rate=0.3, seed=9)
        a, _, _ = make(cfg)
        b, _, _ = make(cfg)
        series_a = [a.filter_power(i * 0.26, WATTS) for i in range(300)]
        series_b = [b.filter_power(i * 0.26, WATTS) for i in range(300)]
        assert series_a == series_b
        assert a.injected.get("thermal-ramp", 0) > 0

    def test_separate_rng_stream_preserves_sample_faults(self):
        # Enabling the ramp must not shift the dropout/stuck/noise
        # schedule of an established seed: compare which samples drop.
        base, _, _ = make(FaultConfig(sensor_dropout_rate=0.2, seed=7))
        ramped, _, _ = make(
            FaultConfig(
                sensor_dropout_rate=0.2, thermal_ramp_rate=0.3, seed=7
            )
        )
        drops_base = [
            base.filter_power(i * 0.26, WATTS) is None for i in range(300)
        ]
        drops_ramped = [
            ramped.filter_power(i * 0.26, WATTS) is None for i in range(300)
        ]
        assert drops_base == drops_ramped

    def test_ramp_rides_on_top_of_noise(self):
        # The excursion applies after the sample-fault chain, so a noisy
        # reading still carries the extra watts on the heated rails.
        inj, _, _ = make(
            FaultConfig(
                sensor_noise_rate=1.0,
                sensor_noise_std=0.2,
                thermal_ramp_rate=1.0,
                thermal_ramp_samples=3,
                thermal_ramp_heat_w=2.0,
                seed=3,
            )
        )
        inj.filter_power(0.26, WATTS)            # edge: +0 W
        observed = inj.filter_power(0.52, WATTS)  # middle: +2 W peak
        # Noise scales all rails by one factor; the ramp then adds the
        # same excursion to board and total only.
        factor = observed["big"] / WATTS["big"]
        assert observed["board"] == pytest.approx(
            WATTS["board"] * factor + 2.0
        )
        assert observed["total"] == pytest.approx(
            WATTS["total"] * factor + 2.0
        )


class TestHeartbeatFaults:
    def test_stall_and_jitter_delays(self):
        inj, _, _ = make(FaultConfig(heartbeat_stall_rate=1.0, seed=0))
        kind, delay = inj.heartbeat_fault("app", 1.0)
        assert kind == "heartbeat-stall"
        assert delay == FaultConfig().heartbeat_stall_ticks

        inj, _, _ = make(
            FaultConfig(heartbeat_jitter_rate=1.0, heartbeat_jitter_ticks=4, seed=0)
        )
        kind, delay = inj.heartbeat_fault("app", 1.0)
        assert kind == "heartbeat-jitter"
        assert 1 <= delay <= 4

    def test_no_fault_returns_none(self):
        inj, _, _ = make(FaultConfig(sensor_dropout_rate=0.5, seed=0))
        assert inj.heartbeat_fault("app", 1.0) is None


class TestActuationFaults:
    def test_write_rolls_respect_rates(self):
        inj, _, _ = make(FaultConfig(dvfs_failure_rate=1.0, seed=0))
        assert inj.actuation_enabled("dvfs")
        assert not inj.actuation_enabled("affinity")
        assert not inj.dvfs_write_ok("big", 1800)
        assert inj.affinity_write_ok("app")  # rate 0 never fails

    def test_counters_and_summary(self):
        inj, _, _ = make(FaultConfig.defaults())
        inj.note_injected("dvfs", "big", 1.0)
        inj.note_injected("dvfs", "big", 2.0)
        inj.note_recovered("dvfs", "big", 3.0)
        assert inj.total_injected == 2
        assert inj.total_recovered == 1
        assert inj.summary() == {"dvfs": (2, 1)}
