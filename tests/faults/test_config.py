"""FaultConfig validation, enablement queries, and presets."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FaultConfig


class TestValidation:
    def test_default_config_is_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled
        assert not cfg.sensor_enabled
        assert not cfg.heartbeat_enabled
        assert not cfg.actuation_enabled

    @pytest.mark.parametrize(
        "field",
        [
            "sensor_dropout_rate",
            "sensor_noise_rate",
            "sensor_stuck_rate",
            "thermal_ramp_rate",
            "heartbeat_stall_rate",
            "heartbeat_jitter_rate",
            "dvfs_failure_rate",
            "affinity_failure_rate",
            "app_crash_rate",
            "app_hang_rate",
            "app_runaway_rate",
            "controller_restart_rate",
        ],
    )
    @pytest.mark.parametrize("bad", [-0.1, -1e-9, 1.5])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: bad})

    def test_noise_std_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(sensor_noise_std=-0.01)

    def test_thermal_ramp_heat_must_be_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(thermal_ramp_heat_w=-0.5)

    @pytest.mark.parametrize(
        "field",
        [
            "sensor_stuck_samples",
            "thermal_ramp_samples",
            "heartbeat_stall_ticks",
            "heartbeat_jitter_ticks",
        ],
    )
    def test_episode_lengths_must_be_at_least_one(self, field):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: 0})


class TestEnablement:
    def test_any_rate_enables(self):
        assert FaultConfig(sensor_dropout_rate=0.1).enabled
        assert FaultConfig(dvfs_failure_rate=0.1).enabled

    def test_channel_queries_are_independent(self):
        cfg = FaultConfig(heartbeat_jitter_rate=0.5)
        assert cfg.heartbeat_enabled
        assert not cfg.sensor_enabled
        assert not cfg.actuation_enabled

    def test_thermal_ramp_is_a_sensor_channel(self):
        cfg = FaultConfig(thermal_ramp_rate=0.1)
        assert cfg.sensor_enabled
        assert cfg.enabled
        assert not cfg.heartbeat_enabled


class TestPresets:
    def test_disabled_preset(self):
        assert not FaultConfig.disabled().enabled

    def test_defaults_enable_every_channel(self):
        cfg = FaultConfig.defaults(seed=7)
        assert cfg.seed == 7
        assert cfg.sensor_enabled
        assert cfg.heartbeat_enabled
        assert cfg.actuation_enabled

    def test_scaled_by_zero_disables(self):
        assert not FaultConfig.defaults().scaled(0.0).enabled

    def test_scaled_multiplies_rates_and_caps_at_one(self):
        cfg = FaultConfig.defaults().scaled(100.0)
        assert cfg.dvfs_failure_rate == 1.0
        assert cfg.sensor_dropout_rate == 1.0
        # Shapes are preserved, only rates scale.
        assert cfg.sensor_stuck_samples == FaultConfig.defaults().sensor_stuck_samples

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ConfigurationError):
            FaultConfig.defaults().scaled(-1.0)

    def test_fault_kinds_cover_all_channels(self):
        assert set(FAULT_KINDS) == {
            "sensor-dropout",
            "sensor-noise",
            "sensor-stuck",
            "heartbeat-stall",
            "heartbeat-jitter",
            "dvfs",
            "affinity",
            "thermal-ramp",
        }
