"""Unit tests for the perf-score ordering and incremental stepping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import SystemState, max_state
from repro.mphars.perfscore import (
    ScoreOrderedStates,
    incremental_step,
    perf_score,
)
from repro.platform.spec import odroid_xu3

_SPEC = odroid_xu3()


class TestPerfScore:
    def test_formula(self):
        # perfScore = C_B·r0·(f_B/f0) + C_L·(f_L/f0)
        state = SystemState(4, 4, 1600, 1300)
        assert perf_score(state) == pytest.approx(4 * 1.5 * 1.6 + 4 * 1.3)

    def test_monotone_in_every_component(self):
        base = SystemState(2, 2, 1200, 1000)
        for richer in (
            SystemState(3, 2, 1200, 1000),
            SystemState(2, 3, 1200, 1000),
            SystemState(2, 2, 1300, 1000),
            SystemState(2, 2, 1200, 1100),
        ):
            assert perf_score(richer) > perf_score(base)


class TestScoreOrderedStates:
    def test_covers_full_space(self, xu3):
        states = ScoreOrderedStates(xu3)
        assert len(states) == xu3.state_space_size()

    def test_top_is_max_state(self, xu3):
        assert ScoreOrderedStates(xu3).top == max_state(xu3)

    def test_step_up_increases_score_minimally(self, xu3):
        states = ScoreOrderedStates(xu3)
        current = SystemState(2, 2, 1200, 1000)
        up = states.step_up(current)
        assert states.score_of(up) > states.score_of(current)

    def test_step_down_decreases_score(self, xu3):
        states = ScoreOrderedStates(xu3)
        current = SystemState(2, 2, 1200, 1000)
        down = states.step_down(current)
        assert states.score_of(down) < states.score_of(current)

    def test_edges_return_none(self, xu3):
        states = ScoreOrderedStates(xu3)
        assert states.step_up(max_state(xu3)) is None
        bottom = SystemState(0, 1, 800, 800)
        assert states.step_down(bottom) is None


class TestIncrementalStep:
    def test_step_changes_exactly_one_component(self, xu3):
        current = SystemState(2, 2, 1200, 1000)
        for increase in (True, False):
            nxt = incremental_step(xu3, current, increase)
            assert current.manhattan_distance(nxt, xu3) == 1

    def test_step_direction(self, xu3):
        current = SystemState(2, 2, 1200, 1000)
        up = incremental_step(xu3, current, increase=True)
        down = incremental_step(xu3, current, increase=False)
        assert perf_score(up) > perf_score(current) > perf_score(down)

    def test_smallest_move_chosen(self, xu3):
        """From the max state the cheapest decrease is one little-freq
        step (Δscore = 4·0.1 = 0.4), cheaper than any big-side move."""
        down = incremental_step(xu3, max_state(xu3), increase=False)
        assert down == SystemState(4, 4, 1600, 1200)

    def test_edges_return_none(self, xu3):
        assert incremental_step(xu3, max_state(xu3), increase=True) is None
        bottom = SystemState(0, 1, 800, 800)
        # From the bottom there is still a decrease available only if a
        # component can drop; (0,1,800,800) can't.
        assert incremental_step(xu3, bottom, increase=False) is None


@given(
    cb=st.integers(min_value=0, max_value=4),
    cl=st.integers(min_value=0, max_value=4),
    ifb=st.integers(min_value=0, max_value=8),
    ifl=st.integers(min_value=0, max_value=5),
    increase=st.booleans(),
)
@settings(max_examples=60)
def test_incremental_step_properties(cb, cl, ifb, ifl, increase):
    if cb == 0 and cl == 0:
        return
    current = SystemState(
        cb, cl, _SPEC.big.frequencies_mhz[ifb], _SPEC.little.frequencies_mhz[ifl]
    )
    nxt = incremental_step(_SPEC, current, increase)
    if nxt is None:
        return
    nxt.validate(_SPEC)
    assert current.manhattan_distance(nxt, _SPEC) == 1
    if increase:
        assert perf_score(nxt) > perf_score(current)
    else:
        assert perf_score(nxt) < perf_score(current)
