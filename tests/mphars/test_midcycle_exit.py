"""Regression tests: an app unregistering mid-cycle must not poison
MP-HARS (supervisor evictions land between any two MAPE stages)."""

from types import SimpleNamespace

import pytest

from repro.core.state import SystemState
from repro.experiments.runner import RunShape, build_target
from repro.experiments.versions import attach_multi_app_version
from repro.heartbeats.targets import Satisfaction
from repro.mphars.manager import MpHarsManager
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.parsec import make_benchmark, resolve_name


@pytest.fixture
def mp_sim(xu3):
    shapes = [
        RunShape(benchmark="swaptions", n_units=400,
                 target_fraction=0.75, seed=1),
        RunShape(benchmark="bodytrack", n_units=400,
                 target_fraction=0.75, seed=2),
    ]
    sim = Simulation(xu3, tick_s=0.01)
    apps = []
    for position, shape in enumerate(shapes):
        target = build_target(xu3, shape)
        model = make_benchmark(shape.benchmark, shape.n_units, 8)
        model.reset(shape.seed)
        name = f"{resolve_name(shape.benchmark)}-{position}"
        apps.append(sim.add_app(SimApp(name, model, target)))
    controllers = attach_multi_app_version(sim, "mp-hars-e")
    sim.run(until_s=20.0)
    manager = next(c for c in controllers if isinstance(c, MpHarsManager))
    return sim, apps, manager


class TestUnregisterApp:
    def test_unregister_drops_state_and_forces_repartition(self, mp_sim):
        sim, (victim, survivor), manager = mp_sim
        assert manager.current_allocation(victim.name) is not None
        manager.unregister_app(sim, victim.name)
        assert manager.current_allocation(victim.name) is None
        assert victim.name in manager._removed
        assert victim.name not in manager._last_rate
        # Every survivor is owed a forced Algorithm 2/4 pass.
        assert survivor.name in manager._repartition_pending

    def test_unregister_unknown_app_is_a_no_op(self, mp_sim):
        sim, _, manager = mp_sim
        before = dict(manager._apps)
        manager.unregister_app(sim, "ghost")
        assert manager._apps == before
        assert "ghost" not in manager._removed


class TestMidCycleGuards:
    """Each MAPE stage tolerates the app vanishing just before it runs."""

    def _fake_ctx(self, app):
        return SimpleNamespace(
            app=app,
            analysis=SimpleNamespace(satisfaction=Satisfaction.ACHIEVE),
            notes={},
        )

    def test_sense_ignores_unregistered_app(self, mp_sim):
        sim, (victim, _), manager = mp_sim
        manager.unregister_app(sim, victim.name)
        manager._sense(victim, victim.log.last)
        assert victim.name not in manager._last_rate

    def test_current_state_is_none_for_unregistered_app(self, mp_sim):
        sim, (victim, _), manager = mp_sim
        manager.unregister_app(sim, victim.name)
        assert manager._current_state_of(sim, victim) is None

    def test_constraint_rejects_everything_for_unregistered_app(self, mp_sim):
        sim, (victim, _), manager = mp_sim
        manager.unregister_app(sim, victim.name)
        ctx = self._fake_ctx(victim)
        allowed = manager._constraint(ctx)
        state = SystemState(1, 1, 800, 800)
        assert allowed(state, state) is False
        assert set(ctx.notes["decisions"].values()) == {None}

    def test_execute_plan_is_a_no_op_for_unregistered_app(self, mp_sim):
        sim, (victim, _), manager = mp_sim
        manager.unregister_app(sim, victim.name)
        adaptations = manager.knowledge.adaptations
        manager._execute_plan(
            sim, self._fake_ctx(victim), SystemState(1, 1, 800, 800)
        )
        assert manager.knowledge.adaptations == adaptations

    def test_heartbeat_after_unregister_does_not_raise(self, mp_sim):
        sim, (victim, _), manager = mp_sim
        manager.unregister_app(sim, victim.name)
        assert victim.log.last is not None
        manager.on_heartbeat(sim, victim, victim.log.last)
