"""Unit tests for MP-HARS manager internals (frequency gating, state
synthesis) without full simulations."""

import pytest

from repro.core.state import SystemState
from repro.mphars.freeze import StateDecision
from repro.mphars.manager import _freq_allowed


class TestFreqAllowed:
    def test_unconstrained(self):
        assert _freq_allowed(None, 800, 1600)
        assert _freq_allowed(None, 1600, 800)

    def test_keep_requires_equality(self):
        assert _freq_allowed(StateDecision.KEEP, 1000, 1000)
        assert not _freq_allowed(StateDecision.KEEP, 1100, 1000)
        assert not _freq_allowed(StateDecision.KEEP, 900, 1000)

    def test_inc_allows_equal_or_higher(self):
        assert _freq_allowed(StateDecision.INC, 1000, 1000)
        assert _freq_allowed(StateDecision.INC, 1200, 1000)
        assert not _freq_allowed(StateDecision.INC, 800, 1000)

    def test_dec_allows_equal_or_lower(self):
        assert _freq_allowed(StateDecision.DEC, 1000, 1000)
        assert _freq_allowed(StateDecision.DEC, 800, 1000)
        assert not _freq_allowed(StateDecision.DEC, 1200, 1000)
