"""Unit tests for the Table 4.3 decision table and freeze helpers."""

import itertools

import pytest

from repro.heartbeats.targets import Satisfaction
from repro.mphars.freeze import (
    FreezeDecision,
    StateDecision,
    decide,
    worst_satisfaction,
)

UNDER = Satisfaction.UNDERPERF
ACHIEVE = Satisfaction.ACHIEVE
OVER = Satisfaction.OVERPERF


class TestDecisionTable:
    def test_table_is_total(self):
        for app, others, frozen in itertools.product(
            (UNDER, ACHIEVE, OVER), (UNDER, ACHIEVE, OVER), (True, False)
        ):
            state, freeze = decide(app, others, frozen)
            assert isinstance(state, StateDecision)
            assert isinstance(freeze, FreezeDecision)

    def test_underperformer_always_allowed_to_increase(self):
        for others in (UNDER, ACHIEVE, OVER):
            assert decide(UNDER, others, False)[0] is StateDecision.INC
            assert decide(UNDER, others, True)[0] is StateDecision.INC

    def test_underperformer_unfreezes_frozen_cluster(self):
        for others in (UNDER, ACHIEVE, OVER):
            assert decide(UNDER, others, True)[1] is FreezeDecision.UNFREEZE
            assert decide(UNDER, others, False)[1] is FreezeDecision.KEEP

    def test_achieving_app_keeps_everything(self):
        for others in (UNDER, ACHIEVE, OVER):
            for frozen in (True, False):
                assert decide(ACHIEVE, others, frozen) == (
                    StateDecision.KEEP,
                    FreezeDecision.KEEP,
                )

    def test_decrease_requires_unanimous_overperformance(self):
        # The only DEC cell: overperformer, all others overperforming,
        # cluster not frozen — and it triggers a freeze.
        assert decide(OVER, OVER, False) == (
            StateDecision.DEC,
            FreezeDecision.FREEZE,
        )
        assert decide(OVER, ACHIEVE, False)[0] is StateDecision.KEEP
        assert decide(OVER, UNDER, False)[0] is StateDecision.KEEP

    def test_frozen_cluster_blocks_decrease(self):
        assert decide(OVER, OVER, True)[0] is not StateDecision.DEC


class TestWorstSatisfaction:
    def test_underperformer_dominates(self):
        assert worst_satisfaction([OVER, UNDER, ACHIEVE]) is UNDER

    def test_achieve_beats_over(self):
        assert worst_satisfaction([OVER, ACHIEVE]) is ACHIEVE

    def test_empty_defaults_to_overperf(self):
        assert worst_satisfaction([]) is OVER

    def test_single(self):
        assert worst_satisfaction([OVER]) is OVER
