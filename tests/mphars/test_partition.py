"""Unit and property tests for Algorithm 4 core allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.mphars.appdata import AppData
from repro.mphars.clusterdata import ClusterData
from repro.mphars.partition import get_allocatable_core_set, release_all


def _world():
    big = ClusterData(name="big", n_cores=4, first_core_id=4)
    little = ClusterData(name="little", n_cores=4, first_core_id=0)
    return big, little


def _app(name="a"):
    return AppData(name=name, n_big_slots=4, n_little_slots=4)


class TestAllocation:
    def test_first_allocation_takes_free_cores(self):
        big, little = _world()
        app = _app()
        app.request_counts(2, 1)
        mask = get_allocatable_core_set(app, big, little)
        assert mask == frozenset({4, 5, 0})
        assert big.free_count == 2 and little.free_count == 3
        assert app.owned_big == 2 and app.owned_little == 1

    def test_growth_keeps_existing_cores(self):
        big, little = _world()
        app = _app()
        app.request_counts(1, 0)
        first = get_allocatable_core_set(app, big, little)
        app.request_counts(3, 0)
        second = get_allocatable_core_set(app, big, little)
        assert first <= second  # no migration of the original core

    def test_shrink_frees_cores(self):
        big, little = _world()
        app = _app()
        app.request_counts(3, 2)
        get_allocatable_core_set(app, big, little)
        app.request_counts(1, 0)
        mask = get_allocatable_core_set(app, big, little)
        assert len(mask) == 1
        assert big.free_count == 3 and little.free_count == 4

    def test_two_apps_never_share_cores(self):
        big, little = _world()
        first, second = _app("a"), _app("b")
        first.request_counts(2, 2)
        mask_a = get_allocatable_core_set(first, big, little)
        second.request_counts(2, 2)
        mask_b = get_allocatable_core_set(second, big, little)
        assert not mask_a & mask_b

    def test_paper_example_free_core_usage(self):
        """Section 4.1.3's example: app A holds big 0–1; app B asking for
        big cores gets big 2–3 (the free cores), not A's."""
        big, little = _world()
        app_a, app_b = _app("A"), _app("B")
        app_a.request_counts(2, 0)
        mask_a = get_allocatable_core_set(app_a, big, little)
        app_b.request_counts(2, 0)
        mask_b = get_allocatable_core_set(app_b, big, little)
        assert mask_a == frozenset({4, 5})
        assert mask_b == frozenset({6, 7})

    def test_over_allocation_raises(self):
        big, little = _world()
        first, second = _app("a"), _app("b")
        first.request_counts(3, 0)
        get_allocatable_core_set(first, big, little)
        second.request_counts(2, 0)
        with pytest.raises(AllocationError):
            get_allocatable_core_set(second, big, little)

    def test_release_all(self):
        big, little = _world()
        app = _app()
        app.request_counts(4, 4)
        get_allocatable_core_set(app, big, little)
        release_all(app, big, little)
        assert big.free_count == 4 and little.free_count == 4
        assert app.owned_big == 0 and app.owned_little == 0


@given(
    requests=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # app index
            st.integers(min_value=0, max_value=4),  # big request
            st.integers(min_value=0, max_value=4),  # little request
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=60)
def test_partition_invariants_under_request_sequences(requests):
    """Ownership stays disjoint and conserved across arbitrary request
    sequences (requests that exceed free capacity are rejected without
    corrupting state)."""
    big, little = _world()
    apps = [_app(f"a{i}") for i in range(3)]
    for index, want_big, want_little in requests:
        app = apps[index]
        before = (
            [list(a.use_b_core) for a in apps],
            [list(a.use_l_core) for a in apps],
            list(big.free_core),
            list(little.free_core),
        )
        free_big = big.free_count + app.owned_big
        free_little = little.free_count + app.owned_little
        app.request_counts(want_big, want_little)
        if want_big > free_big or want_little > free_little:
            with pytest.raises(AllocationError):
                get_allocatable_core_set(app, big, little)
            # Roll back for the next iteration (the manager's search
            # bounds candidates so this never happens in production).
            for a, b_cores, l_cores in zip(apps, before[0], before[1]):
                a.use_b_core[:] = b_cores
                a.use_l_core[:] = l_cores
                a.nprocs_b = sum(b_cores)
                a.nprocs_l = sum(l_cores)
                a.dec_big_core_cnt = 0
                a.dec_little_core_cnt = 0
            big.free_core[:] = before[2]
            little.free_core[:] = before[3]
            continue
        mask = get_allocatable_core_set(app, big, little)
        assert len(mask) == want_big + want_little

        # Invariant: per-slot ownership is exclusive and matches the
        # cluster free list exactly.
        for cluster, attr in ((big, "use_b_core"), (little, "use_l_core")):
            for slot in range(cluster.n_cores):
                owners = sum(getattr(a, attr)[slot] for a in apps)
                assert owners in (0, 1)
                assert cluster.free_core[slot] == (owners == 0)
