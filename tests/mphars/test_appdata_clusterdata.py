"""Unit tests for the Table 4.1 / 4.2 data structures."""

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.mphars.appdata import AppData
from repro.mphars.clusterdata import ClusterData


class TestAppData:
    def _data(self):
        return AppData(name="a", n_big_slots=4, n_little_slots=4)

    def test_initial_state(self):
        data = self._data()
        assert data.owned_big == 0 and data.owned_little == 0
        assert data.freezing_cnt_b == 0 and data.freezing_cnt_l == 0
        assert not data.uses_cluster("big")
        assert not data.uses_cluster("little")

    def test_request_counts_computes_dec_fields(self):
        data = self._data()
        data.use_b_core[0] = data.use_b_core[1] = True
        data.request_counts(new_big=1, new_little=2)
        assert data.dec_big_core_cnt == 1  # owned 2, wants 1
        assert data.dec_little_core_cnt == 0
        assert data.nprocs_b == 1 and data.nprocs_l == 2

    def test_request_counts_validates(self):
        data = self._data()
        with pytest.raises(AllocationError):
            data.request_counts(5, 0)
        with pytest.raises(AllocationError):
            data.request_counts(0, -1)

    def test_tick_freezing_counts(self):
        data = self._data()
        data.freezing_cnt_b = 2
        data.tick_freezing_counts()
        data.tick_freezing_counts()
        data.tick_freezing_counts()  # must not underflow
        assert data.freezing_cnt_b == 0
        assert data.freezing_cnt_l == 0

    def test_uses_cluster_validation(self):
        with pytest.raises(ConfigurationError):
            self._data().uses_cluster("gpu")


class TestClusterData:
    def _cluster(self):
        return ClusterData(name="big", n_cores=4, first_core_id=4)

    def test_all_cores_start_free(self):
        cluster = self._cluster()
        assert cluster.free_count == 4
        assert cluster.free_slots() == (0, 1, 2, 3)

    def test_mark_and_free_count(self):
        cluster = self._cluster()
        cluster.mark(1, free=False)
        cluster.mark(3, free=False)
        assert cluster.free_count == 2
        assert cluster.free_slots() == (0, 2)

    def test_global_core_id_uses_first_core_id(self):
        cluster = self._cluster()
        assert cluster.global_core_id(0) == 4
        assert cluster.global_core_id(3) == 7

    def test_slot_bounds(self):
        cluster = self._cluster()
        with pytest.raises(AllocationError):
            cluster.global_core_id(4)
        with pytest.raises(AllocationError):
            cluster.mark(-1, free=True)
