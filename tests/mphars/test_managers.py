"""Behavioural tests for MP-HARS and CONS-I controllers."""

import pytest

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_I
from repro.heartbeats.targets import PerformanceTarget
from repro.mphars.consi import ConsIController
from repro.mphars.manager import MpHarsManager
from repro.platform.cluster import BIG, LITTLE
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile


def _app(name, n_units=60, unit_work=9.6, target=(0.27, 0.3, 0.33), serial=0.0):
    """Two of these apps sharing the GTS baseline run at ~0.5 HPS each;
    the default target sits well below that, so both overperform at the
    start and the managers must adapt downward."""
    model = DataParallelWorkload(
        WorkloadTraits(name=name, big_little_ratio=1.5),
        8,
        ConstantProfile(unit_work),
        n_units,
        serial_work=serial,
    )
    return SimApp(name, model, PerformanceTarget(*target))


def _mp_sim(xu3, power_estimator, policy=HARS_E, apps=None):
    sim = Simulation(xu3)
    for app in apps or (_app("a"), _app("b")):
        sim.add_app(app)
    manager = MpHarsManager(
        policy=policy,
        perf_estimator=PerformanceEstimator(),
        power_estimator=power_estimator,
    )
    sim.add_controller(manager)
    return sim, manager


class TestMpHarsPartitioning:
    def test_partitions_stay_disjoint_throughout(self, xu3, power_estimator):
        sim, manager = _mp_sim(xu3, power_estimator)
        for _ in range(6000):
            sim.step()
            if all(app.is_done() for app in sim.apps):
                break
        # Check on every adaptation boundary would be ideal; at minimum
        # the final ownership must be disjoint.
        a = manager._apps["a"]
        b = manager._apps["b"]
        for slot in range(4):
            assert not (a.use_b_core[slot] and b.use_b_core[slot])
            assert not (a.use_l_core[slot] and b.use_l_core[slot])

    def test_both_apps_reach_their_windows(self, xu3, power_estimator):
        apps = (_app("a"), _app("b"))
        sim, manager = _mp_sim(xu3, power_estimator, apps=apps)
        sim.run(until_s=400)
        for app in apps:
            assert app.monitor.mean_normalized_performance() > 0.75

    def test_adaptation_saves_power_vs_baseline(self, xu3, power_estimator):
        from repro.baselines.baseline import BaselineController

        apps = (_app("a"), _app("b"))
        sim, _ = _mp_sim(xu3, power_estimator, apps=apps)
        sim.run(until_s=400)
        adapted_power = sim.sensor.average_power_w()

        base_sim = Simulation(xu3)
        for app in (_app("a"), _app("b")):
            base_sim.add_app(app)
        base_sim.add_controller(BaselineController())
        base_sim.run(until_s=400)
        assert adapted_power < base_sim.sensor.average_power_w()

    def test_done_app_releases_cores(self, xu3, power_estimator):
        apps = (_app("short", n_units=15), _app("long", n_units=80))
        sim, manager = _mp_sim(xu3, power_estimator, apps=apps)
        sim.run(until_s=500)
        short = manager._apps["short"]
        assert short.owned_big == 0 and short.owned_little == 0

    def test_allocation_reported(self, xu3, power_estimator):
        sim, manager = _mp_sim(xu3, power_estimator)
        sim.run(until_s=60)
        for name in ("a", "b"):
            allocation = manager.current_allocation(name)
            assert allocation is not None
        assert manager.current_allocation("ghost") is None

    def test_late_starter_gets_only_free_cores(self, xu3, power_estimator):
        """The case-6 mechanism: an app whose heartbeats start late can
        only claim cores no one else owns."""
        late = _app("late", n_units=40, serial=60.0)
        early = _app("early", n_units=80)
        sim, manager = _mp_sim(xu3, power_estimator, apps=(early, late))
        sim.run(until_s=600)
        early_data = manager._apps["early"]
        late_data = manager._apps["late"]
        # Whatever the late app owned, it never overlapped early's cores.
        for slot in range(4):
            assert not (
                early_data.use_b_core[slot] and late_data.use_b_core[slot]
            )
            assert not (
                early_data.use_l_core[slot] and late_data.use_l_core[slot]
            )


class TestMpHarsFreezing:
    def test_frequency_decrease_sets_freezing_counts(
        self, xu3, power_estimator
    ):
        sim, manager = _mp_sim(xu3, power_estimator)
        saw_freeze = False
        for _ in range(8000):
            sim.step()
            if any(
                data.freezing_cnt_b > 0 or data.freezing_cnt_l > 0
                for data in manager._apps.values()
            ):
                saw_freeze = True
                break
            if all(app.is_done() for app in sim.apps):
                break
        # Both apps overperform at the start, so at least one shared
        # frequency decrease — and hence a freeze — must have occurred.
        assert saw_freeze


class TestConsI:
    def test_starts_at_top_state(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_app("a"))
        controller = ConsIController()
        sim.add_controller(controller)
        sim.step()
        assert controller.state.c_big == 4
        assert controller.state.f_big_mhz == 1600

    def test_overperformers_drive_global_state_down(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_app("a"))
        sim.add_app(_app("b"))
        controller = ConsIController()
        sim.add_controller(controller)
        sim.run(until_s=250)
        from repro.mphars.perfscore import perf_score

        assert controller.adaptations > 0
        assert perf_score(controller.state) < perf_score(
            controller._states.top
        )

    def test_conservative_rule_blocks_decrease_when_other_achieves(self, xu3):
        """Both apps share the global state; once one achieves, the other
        (still overperforming) cannot pull the state further down — the
        Figure 5.5 pathology."""
        # App 'low' has a much lower target than 'high'.
        low = _app("low", target=(0.2, 0.25, 0.3), n_units=100)
        high = _app("high", target=(0.9, 1.0, 1.1), n_units=100)
        sim = Simulation(xu3)
        sim.add_app(low)
        sim.add_app(high)
        controller = ConsIController()
        sim.add_controller(controller)
        sim.run(until_s=400)
        # 'low' ends overperforming: its rate tracks 'high's achieved
        # state because resources are shared.
        rate = low.log.window_rate(5)
        assert rate is not None and rate > low.target.max_rate

    def test_allocation_reports_global_counts(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_app("a"))
        controller = ConsIController()
        sim.add_controller(controller)
        sim.step()
        assert controller.current_allocation("a") == (4, 4)
        assert controller.current_allocation("ghost") is None


class TestInterferenceGating:
    """Table 4.3 in action: shared-cluster frequency moves are gated by
    co-runners' satisfaction."""

    def test_shared_cluster_freq_not_lowered_while_corunner_achieves(
        self, xu3, power_estimator
    ):
        """App 'low' overperforms and would lower frequencies, but app
        'high' achieves on the same clusters — the decision table says
        KEEP, so the overperformer must shed cores instead of dragging
        the shared frequency down."""
        low = _app("low", target=(0.18, 0.2, 0.22), n_units=80)
        high = _app("high", target=(0.42, 0.47, 0.52), n_units=80)
        sim = Simulation(xu3)
        sim.add_app(low)
        sim.add_app(high)
        manager = MpHarsManager(
            HARS_E, PerformanceEstimator(), power_estimator
        )
        sim.add_controller(manager)
        sim.run(until_s=700)
        # Both apps end close to their own windows despite the shared
        # frequency: partitioning absorbed the conflict.
        assert high.monitor.mean_normalized_performance() > 0.8
        assert low.monitor.mean_normalized_performance() > 0.8

    def test_unfreeze_on_underperformance(self, xu3, power_estimator):
        """A frozen cluster may still be raised: an underperforming app
        unfreezes it (Table 4.3's UNFREEZE row)."""
        from repro.mphars.freeze import FreezeDecision, decide
        from repro.heartbeats.targets import Satisfaction

        state, freeze = decide(
            Satisfaction.UNDERPERF, Satisfaction.OVERPERF, True
        )
        assert freeze is FreezeDecision.UNFREEZE
