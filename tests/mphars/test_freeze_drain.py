"""Manager-level freeze bookkeeping: set, drain, unfreeze (satellite of
the supervision PR — eviction and checkpoint restore both walk these
paths with arbitrary in-flight freeze state)."""

import pytest

from repro.experiments.runner import RunShape, build_target
from repro.experiments.versions import attach_multi_app_version
from repro.mphars.manager import MpHarsManager
from repro.platform.cluster import BIG, LITTLE
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.parsec import make_benchmark, resolve_name


@pytest.fixture
def mp_manager(xu3):
    shapes = [
        RunShape(benchmark="swaptions", n_units=400,
                 target_fraction=0.5, seed=1),
        RunShape(benchmark="bodytrack", n_units=400,
                 target_fraction=0.5, seed=2),
    ]
    sim = Simulation(xu3, tick_s=0.01)
    apps = []
    for position, shape in enumerate(shapes):
        target = build_target(xu3, shape)
        model = make_benchmark(shape.benchmark, shape.n_units, 8)
        model.reset(shape.seed)
        name = f"{resolve_name(shape.benchmark)}-{position}"
        apps.append(sim.add_app(SimApp(name, model, target)))
    controllers = attach_multi_app_version(sim, "mp-hars-e")
    sim.run(until_s=2.0)
    manager = next(c for c in controllers if isinstance(c, MpHarsManager))
    return apps, manager


def _big_user(manager):
    """Force one registered app to count as a big-cluster user."""
    data = next(iter(manager._apps.values()))
    data.use_b_core[0] = True
    return data


class TestFreezeDrain:
    def test_decrease_freezes_every_cluster_user(self, mp_manager):
        _, manager = mp_manager
        data = _big_user(manager)
        manager._set_freezing_counts(BIG)
        assert data.freezing_cnt_b == manager.freeze_beats
        assert manager._clusters[BIG].frozen

    def test_drained_counts_auto_unfreeze(self, mp_manager):
        _, manager = mp_manager
        data = _big_user(manager)
        manager._set_freezing_counts(BIG)
        for _ in range(manager.freeze_beats):
            assert manager._clusters[BIG].frozen
            for entry in manager._apps.values():
                entry.tick_freezing_counts()
            manager._refresh_frozen_flags()
        assert data.freezing_cnt_b == 0
        assert not manager._clusters[BIG].frozen

    def test_explicit_unfreeze_clears_counts_immediately(self, mp_manager):
        _, manager = mp_manager
        data = _big_user(manager)
        manager._set_freezing_counts(BIG)
        assert data.freezing_cnt_b > 0
        manager._unfreeze(BIG)
        assert data.freezing_cnt_b == 0
        assert not manager._clusters[BIG].frozen
        # Re-freezing after an unfreeze starts a fresh full countdown.
        manager._set_freezing_counts(BIG)
        assert data.freezing_cnt_b == manager.freeze_beats

    def test_clusters_freeze_independently(self, mp_manager):
        _, manager = mp_manager
        _big_user(manager)
        manager._set_freezing_counts(BIG)
        assert manager._clusters[BIG].frozen
        manager._refresh_frozen_flags()
        assert not manager._clusters[LITTLE].frozen
