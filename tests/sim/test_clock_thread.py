"""Unit tests for the clock and thread primitives."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.thread import INITIAL_LOAD, LOAD_TIME_CONSTANT_S, SimThread


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.now_s == pytest.approx(0.75)

    def test_cannot_go_backwards(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-0.1)
        with pytest.raises(SimulationError):
            SimClock().advance(0.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(2.0)
        clock.reset()
        assert clock.now_s == 0.0


class TestSimThread:
    def test_new_threads_start_heavy(self):
        thread = SimThread(app_name="a", local_index=0)
        assert thread.load == INITIAL_LOAD == 1.0

    def test_load_decays_when_idle(self):
        thread = SimThread(app_name="a", local_index=0)
        thread.update_load(demand=False, dt_s=LOAD_TIME_CONSTANT_S)
        assert thread.load == pytest.approx(math.exp(-1.0))

    def test_load_recovers_when_busy(self):
        thread = SimThread(app_name="a", local_index=0, load=0.0)
        for _ in range(100):
            thread.update_load(demand=True, dt_s=0.01)
        assert thread.load > 0.6

    def test_load_stays_in_unit_interval(self):
        thread = SimThread(app_name="a", local_index=0)
        for demanded in (True, False) * 50:
            thread.update_load(demanded, dt_s=0.01)
            assert 0.0 <= thread.load <= 1.0

    def test_update_needs_positive_dt(self):
        thread = SimThread(app_name="a", local_index=0)
        with pytest.raises(SimulationError):
            thread.update_load(True, dt_s=0.0)

    def test_affinity_set_and_clear(self):
        thread = SimThread(app_name="a", local_index=0)
        thread.set_affinity(frozenset({1, 2}))
        assert thread.affinity == frozenset({1, 2})
        thread.set_affinity(None)
        assert thread.affinity is None

    def test_empty_affinity_rejected(self):
        thread = SimThread(app_name="a", local_index=0)
        with pytest.raises(SimulationError):
            thread.set_affinity(frozenset())

    def test_key(self):
        assert SimThread(app_name="app", local_index=3).key() == "app/t3"
