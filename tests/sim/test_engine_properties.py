"""Property/robustness tests of the engine across configurations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heartbeats.targets import PerformanceTarget
from repro.platform.spec import odroid_xu3
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile

_SPEC = odroid_xu3()


def _run(n_threads, n_units, unit_work, tick_s=0.01):
    sim = Simulation(_SPEC, tick_s=tick_s)
    model = DataParallelWorkload(
        WorkloadTraits(name="w"), n_threads, ConstantProfile(unit_work), n_units
    )
    app = sim.add_app(SimApp("w", model, PerformanceTarget(1.0, 1.0, 1.0)))
    elapsed = sim.run(until_s=600)
    return app, elapsed, sim


@given(
    n_threads=st.integers(min_value=1, max_value=12),
    n_units=st.integers(min_value=1, max_value=15),
    unit_work=st.floats(min_value=0.5, max_value=8.0),
)
@settings(max_examples=15, deadline=None)
def test_every_heartbeat_is_emitted_exactly_once(n_threads, n_units, unit_work):
    app, elapsed, _ = _run(n_threads, n_units, unit_work)
    assert app.is_done()
    assert len(app.log) == n_units
    assert elapsed < 600


class TestTickInvariance:
    @pytest.mark.parametrize("tick_s", [0.005, 0.01, 0.02])
    def test_rate_stable_across_tick_sizes(self, tick_s):
        app, _, _ = _run(8, 30, 4.0, tick_s=tick_s)
        reference_app, _, _ = _run(8, 30, 4.0, tick_s=0.01)
        assert app.log.overall_rate() == pytest.approx(
            reference_app.log.overall_rate(), rel=0.03
        )

    @pytest.mark.parametrize("tick_s", [0.005, 0.02])
    def test_energy_stable_across_tick_sizes(self, tick_s):
        _, _, sim = _run(8, 30, 4.0, tick_s=tick_s)
        _, _, reference = _run(8, 30, 4.0, tick_s=0.01)
        assert sim.sensor.energy_j() == pytest.approx(
            reference.sensor.energy_j(), rel=0.05
        )
