"""Unit tests for the trace recorder."""

from repro.sim.tracing import TracePoint, TraceRecorder


def _point(index, rate=1.0, big=2, little=1):
    return TracePoint(
        time_s=float(index),
        hb_index=index,
        rate=rate,
        big_cores=big,
        little_cores=little,
        big_freq_mhz=1000,
        little_freq_mhz=900,
    )


class TestTraceRecorder:
    def test_points_per_app(self):
        trace = TraceRecorder()
        trace.record("a", _point(0))
        trace.record("a", _point(1))
        trace.record("b", _point(0))
        assert len(trace.points("a")) == 2
        assert len(trace.points("b")) == 1
        assert trace.app_names == ("a", "b")
        assert len(trace) == 3

    def test_unknown_app_is_empty(self):
        assert TraceRecorder().points("nope") == ()

    def test_series_extraction(self):
        trace = TraceRecorder()
        trace.record("a", _point(0, rate=2.0))
        trace.record("a", _point(1, rate=3.0))
        assert trace.series("a", "rate") == [(0, 2.0), (1, 3.0)]
        assert trace.series("a", "big_cores") == [(0, 2.0), (1, 2.0)]

    def test_series_skips_none_rates(self):
        trace = TraceRecorder()
        trace.record("a", _point(0, rate=None))
        trace.record("a", _point(1, rate=1.5))
        assert trace.series("a", "rate") == [(1, 1.5)]
