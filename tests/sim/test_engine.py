"""Unit and behavioural tests for the simulation engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.sim.controller import Controller
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.microbench import MicrobenchWorkload
from repro.workloads.phases import ConstantProfile


def _dp_app(name="app", n_threads=4, n_units=10, unit_work=2.0, ratio=1.5):
    traits = WorkloadTraits(name=name, big_little_ratio=ratio)
    model = DataParallelWorkload(
        traits, n_threads, ConstantProfile(unit_work), n_units
    )
    target = PerformanceTarget(0.5, 1.0, 1.5)
    return SimApp(name, model, target)


class TestSetup:
    def test_duplicate_app_names_rejected(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_dp_app("a"))
        with pytest.raises(ConfigurationError):
            sim.add_app(_dp_app("a"))

    def test_run_without_apps_raises(self, xu3):
        with pytest.raises(SimulationError):
            Simulation(xu3).run()

    def test_endless_workload_needs_horizon(self, xu3):
        sim = Simulation(xu3)
        app = SimApp(
            "spin",
            MicrobenchWorkload(n_threads=1),
            PerformanceTarget(1.0, 1.0, 1.0),
        )
        sim.add_app(app)
        with pytest.raises(SimulationError):
            sim.run()
        assert sim.run(until_s=0.1) == pytest.approx(0.1)

    def test_app_lookup(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_dp_app("x"))
        assert sim.app("x") is app
        with pytest.raises(ConfigurationError):
            sim.app("y")

    def test_bad_tick_rejected(self, xu3):
        with pytest.raises(ConfigurationError):
            Simulation(xu3, tick_s=0.0)


class TestExecution:
    def test_run_completes_workload(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_dp_app(n_units=20))
        end = sim.run(until_s=100)
        assert app.is_done()
        assert len(app.log) == 20
        assert end < 100

    def test_heartbeat_times_monotonic(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_dp_app(n_units=15))
        sim.run(until_s=100)
        times = [b.time_s for b in app.log.beats]
        assert times == sorted(times)

    def test_rate_scales_with_frequency(self, xu3):
        def rate_at(freq):
            sim = Simulation(xu3)
            app = sim.add_app(_dp_app(n_units=30, ratio=1.5))
            app.set_cpuset(frozenset({4, 5, 6, 7}))
            sim.machine.set_freq_mhz(BIG, freq)
            sim.run(until_s=200)
            return app.log.overall_rate()

        assert rate_at(1600) == pytest.approx(2 * rate_at(800), rel=0.05)

    def test_power_recorded_during_run(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_dp_app(n_units=10))
        sim.run(until_s=100)
        assert sim.sensor.average_power_w() > 0
        assert sim.sensor.elapsed_s == pytest.approx(sim.clock.now_s)

    def test_busy_platform_draws_more_than_idle(self, xu3):
        busy = Simulation(xu3)
        busy.add_app(_dp_app(n_units=20))
        busy.run(until_s=100)

        idle = Simulation(xu3)
        idle.add_app(
            SimApp(
                "idle",
                MicrobenchWorkload(n_threads=1, duty=0.01),
                PerformanceTarget(1.0, 1.0, 1.0),
            )
        )
        idle.run(until_s=5)
        assert busy.sensor.average_power_w() > idle.sensor.average_power_w()

    def test_trace_recorded_per_heartbeat(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_dp_app(n_units=12))
        sim.run(until_s=100)
        points = sim.trace.points("app")
        assert len(points) == 12
        assert points[-1].hb_index == 11
        assert points[0].big_freq_mhz == 1600

    def test_pinned_app_uses_only_allowed_cores(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_dp_app(n_units=15))
        for thread in app.threads:
            thread.set_affinity(frozenset({0, 1}))
        sim.run(until_s=200)
        assert set(app.cores_in_use()) <= {0, 1}


class TestRedistribution:
    def test_blocked_thread_time_flows_to_co_tenant(self, xu3):
        """Two threads pinned to one core: one blocks immediately (its
        barrier share is tiny), the other should receive nearly the whole
        core — the multi-round grant loop at work."""
        # One spinning thread and one nearly-idle duty-cycled thread.
        spin = SimApp(
            "spin",
            MicrobenchWorkload(n_threads=1, duty=1.0),
            PerformanceTarget(1.0, 1.0, 1.0),
        )
        light = SimApp(
            "light",
            MicrobenchWorkload(n_threads=1, duty=0.05),
            PerformanceTarget(1.0, 1.0, 1.0),
        )
        sim = Simulation(xu3)
        sim.add_app(spin)
        sim.add_app(light)
        spin.threads[0].set_affinity(frozenset({4}))
        light.threads[0].set_affinity(frozenset({4}))
        sim.run(until_s=2.0)
        speed = spin.model.thread_speed(
            BIG, xu3.big.core_type, xu3.big.max_freq_mhz
        )
        # Without redistribution the spinner gets 50%; with it, ~95%.
        utilization = spin.model.work_done / (speed * 2.0)
        assert utilization > 0.85


class TestControllerHooks:
    def test_hooks_fire(self, xu3):
        events = []

        class Probe(Controller):
            def on_start(self, sim):
                events.append("start")

            def on_tick(self, sim):
                if len(events) < 3:
                    events.append("tick")

            def on_heartbeat(self, sim, app, heartbeat):
                events.append(f"hb{heartbeat.index}")

        sim = Simulation(xu3)
        sim.add_app(_dp_app(n_units=2))
        sim.add_controller(Probe())
        sim.run(until_s=50)
        assert events[0] == "start"
        assert "hb0" in events and "hb1" in events

    def test_controller_allocation_feeds_trace(self, xu3):
        class FixedAllocation(Controller):
            def current_allocation(self, app_name):
                return (2, 1)

        sim = Simulation(xu3)
        sim.add_app(_dp_app(n_units=5))
        sim.add_controller(FixedAllocation())
        sim.run(until_s=50)
        point = sim.trace.points("app")[0]
        assert (point.big_cores, point.little_cores) == (2, 1)

    def test_cannot_add_controller_after_start(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_dp_app(n_units=2))
        sim.step()
        with pytest.raises(SimulationError):
            sim.add_controller(Controller())
