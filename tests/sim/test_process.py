"""Unit tests for the SimApp process wrapper."""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.targets import PerformanceTarget
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile


def _app(n_threads=4, cpuset=None):
    model = DataParallelWorkload(
        WorkloadTraits(name="t"), n_threads, ConstantProfile(1.0), 5
    )
    return SimApp("t", model, PerformanceTarget(1.0, 1.0, 1.0), cpuset=cpuset)


class TestConstruction:
    def test_one_sim_thread_per_model_thread(self):
        app = _app(n_threads=6)
        assert app.n_threads == 6
        assert [t.local_index for t in app.threads] == list(range(6))

    def test_needs_a_name(self):
        model = DataParallelWorkload(
            WorkloadTraits(name="t"), 1, ConstantProfile(1.0), 1
        )
        with pytest.raises(ConfigurationError):
            SimApp("", model, PerformanceTarget(1.0, 1.0, 1.0))

    def test_empty_cpuset_rejected(self):
        with pytest.raises(ConfigurationError):
            _app(cpuset=frozenset())


class TestAllowedCores:
    def test_unrestricted_thread_gets_platform(self):
        app = _app()
        allowed = app.allowed_cores(app.threads[0], tuple(range(8)))
        assert allowed == frozenset(range(8))

    def test_cpuset_restricts(self):
        app = _app(cpuset=frozenset({0, 1}))
        allowed = app.allowed_cores(app.threads[0], tuple(range(8)))
        assert allowed == frozenset({0, 1})

    def test_affinity_intersects_cpuset(self):
        app = _app(cpuset=frozenset({0, 1, 2}))
        app.threads[0].set_affinity(frozenset({2, 3}))
        allowed = app.allowed_cores(app.threads[0], tuple(range(8)))
        assert allowed == frozenset({2})

    def test_empty_intersection_raises(self):
        app = _app(cpuset=frozenset({0}))
        app.threads[0].set_affinity(frozenset({5}))
        with pytest.raises(ConfigurationError):
            app.allowed_cores(app.threads[0], tuple(range(8)))

    def test_offline_cores_excluded(self):
        app = _app()
        allowed = app.allowed_cores(app.threads[0], (0, 1))
        assert allowed == frozenset({0, 1})


class TestAffinityManagement:
    def test_clear_affinities(self):
        app = _app()
        for thread in app.threads:
            thread.set_affinity(frozenset({0}))
        app.clear_affinities()
        assert all(t.affinity is None for t in app.threads)

    def test_set_cpuset_validation(self):
        app = _app()
        app.set_cpuset(frozenset({3}))
        assert app.cpuset == frozenset({3})
        with pytest.raises(ConfigurationError):
            app.set_cpuset(frozenset())
        app.set_cpuset(None)
        assert app.cpuset is None

    def test_cores_in_use(self):
        app = _app()
        app.threads[0].current_core = 4
        app.threads[1].current_core = 4
        app.threads[2].current_core = 1
        assert app.cores_in_use() == (1, 4)
