"""Engine guard rails: runaway protection, hotplug interplay, rounds."""

import pytest

import repro.sim.engine as engine_module
from repro.errors import ConfigurationError, SimulationError
from repro.heartbeats.targets import PerformanceTarget
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.microbench import MicrobenchWorkload
from repro.workloads.phases import ConstantProfile


def _app(n_units=5, n_threads=2):
    model = DataParallelWorkload(
        WorkloadTraits(name="w"), n_threads, ConstantProfile(1.0), n_units
    )
    return SimApp("w", model, PerformanceTarget(1.0, 1.0, 1.0))


class TestRunawayGuard:
    def test_max_ticks_guard_raises(self, xu3, monkeypatch):
        monkeypatch.setattr(engine_module, "MAX_TICKS", 10)
        sim = Simulation(xu3)
        # 50 units of heavy work cannot finish within 10 ticks.
        sim.add_app(_app(n_units=50))
        with pytest.raises(SimulationError, match="stalled|exceeded"):
            sim.run()


class TestHotplugInterplay:
    def test_pinned_thread_on_offline_core_raises(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_app())
        for thread in app.threads:
            thread.set_affinity(frozenset({7}))
        sim.machine.set_core_online(7, False)
        with pytest.raises(ConfigurationError):
            sim.step()

    def test_unpinned_apps_survive_hotplug(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=10))
        sim.machine.set_core_online(7, False)
        sim.machine.set_core_online(6, False)
        sim.run(until_s=60)
        assert app.is_done()
        assert all(c not in (6, 7) for c in app.cores_in_use())


class TestGrantRounds:
    def test_rounds_cap_is_respected(self, xu3, monkeypatch):
        """With a single grant round, a blocked co-tenant's leftover time
        is wasted — throughput of the hungry thread drops measurably."""

        def run(rounds):
            monkeypatch.setattr(Simulation, "GRANT_ROUNDS", rounds)
            sim = Simulation(xu3)
            spin = SimApp(
                "spin",
                MicrobenchWorkload(n_threads=1, duty=1.0),
                PerformanceTarget(1.0, 1.0, 1.0),
            )
            light = SimApp(
                "light",
                MicrobenchWorkload(n_threads=1, duty=0.05),
                PerformanceTarget(1.0, 1.0, 1.0),
            )
            sim.add_app(spin)
            sim.add_app(light)
            spin.threads[0].set_affinity(frozenset({4}))
            light.threads[0].set_affinity(frozenset({4}))
            sim.run(until_s=1.0)
            return spin.model.work_done

        assert run(3) > 1.5 * run(1)

    def test_zero_demand_tick_is_harmless(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=1))
        sim.run(until_s=60)  # app finishes almost immediately
        before = sim.clock.now_s
        sim.step()  # extra tick with nothing runnable
        assert sim.clock.now_s > before
