"""Regression: checkpoint persistence must be atomic and recoverable.

The original ``CheckpointStore.dump`` wrote the JSON file in place: a
daemon killed mid-write left a torn envelope that ``load`` then refused,
taking the *previous* good state down with it.  ``dump`` now goes
through write-to-temp + ``os.replace`` (+ directory fsync), and
``recover`` turns any unreadable file into an explicit cold-start
fallback with a ledger entry instead of an exception.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.serialize import checkpoint_payload, dump_json_atomic
from repro.supervision import CheckpointStore


def store_with(controller="mp-hars", time_s=5.0):
    store = CheckpointStore()
    store.put(checkpoint_payload(controller, time_s, {"ratio": 1.5}))
    return store


class TestAtomicDump:
    def test_dump_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.json")
        store_with().dump(path)
        loaded = CheckpointStore.load(path)
        assert loaded.controller_ids == ["mp-hars"]
        assert loaded.get("mp-hars")["body"] == {"ratio": 1.5}

    def test_dump_replaces_not_truncates(self, tmp_path):
        """No intermediate state of the target file is ever visible:
        the temp file carries the new bytes until the atomic rename."""
        path = str(tmp_path / "state.json")
        store_with(time_s=1.0).dump(path)
        first = os.stat(path).st_ino
        store_with(time_s=2.0).dump(path)
        assert os.stat(path).st_ino != first  # replaced, not rewritten
        assert CheckpointStore.load(path).get("mp-hars")["time_s"] == 2.0

    def test_no_temp_litter_on_failure(self, tmp_path):
        path = str(tmp_path / "state.json")
        with pytest.raises(TypeError):
            dump_json_atomic({"bad": object()}, path)
        assert os.listdir(str(tmp_path)) == []

    def test_atomic_writer_rejects_missing_directory(self, tmp_path):
        with pytest.raises(OSError):
            dump_json_atomic({}, str(tmp_path / "nope" / "x.json"))


class TestTornFileRecovery:
    """The failing-first scenario: truncate a dump, then recover."""

    @pytest.fixture()
    def torn(self, tmp_path):
        path = str(tmp_path / "state.json")
        store_with().dump(path)
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text[: len(text) // 2])
        return path

    def test_load_refuses_a_torn_file(self, torn):
        with pytest.raises((ConfigurationError, json.JSONDecodeError)):
            CheckpointStore.load(torn)

    def test_recover_cold_starts_with_ledger_entry(self, torn):
        store = CheckpointStore.recover(torn)
        assert len(store) == 0  # nothing restored: controllers cold-start
        assert len(store.ledger) == 1
        entry = store.ledger[0]
        assert entry["action"] == "cold-start fallback"
        assert entry["path"] == torn
        assert "unreadable" in entry["reason"]

    def test_recover_missing_file(self, tmp_path):
        store = CheckpointStore.recover(str(tmp_path / "never-written.json"))
        assert len(store) == 0
        assert store.ledger[0]["reason"].startswith("missing")

    def test_recover_passes_through_a_good_file(self, tmp_path):
        path = str(tmp_path / "state.json")
        store_with().dump(path)
        store = CheckpointStore.recover(path)
        assert store.controller_ids == ["mp-hars"]
        assert store.ledger == []

    def test_wrong_kind_is_ledgered(self, tmp_path):
        path = str(tmp_path / "state.json")
        dump_json_atomic({"kind": "something-else"}, path)
        store = CheckpointStore.recover(path)
        assert len(store) == 0
        assert "not a checkpoint store" in store.ledger[0]["reason"]
