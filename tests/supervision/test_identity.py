"""Supervision must be a pure observer on healthy runs, and degrade
gracefully — never crash — under a seeded storm of lifecycle faults."""

import dataclasses

import pytest

from repro.experiments.runner import RunConfig, RunShape, run
from repro.faults import FaultConfig
from repro.supervision import AppHealth, SupervisorConfig


def _snapshot(outcome):
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


class TestZeroFaultIdentity:
    def test_single_app_supervised_run_is_bit_identical(self):
        shape = RunShape(benchmark="swaptions", n_units=120, seed=3)
        plain = run("hars-e", shape)
        supervised = run(
            "hars-e", shape, RunConfig(supervision=True, checkpoint=1.0)
        )
        assert _snapshot(supervised) == _snapshot(plain)
        assert supervised.supervisor.evictions == 0
        assert supervised.checkpoint_store.writes > 0
        assert supervised.supervisor.ledger.status_of(
            "swaptions"
        ) is AppHealth.DONE

    def test_multi_app_supervised_run_is_bit_identical(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=120,
                     target_fraction=0.5, seed=1),
            RunShape(benchmark="bodytrack", n_units=120,
                     target_fraction=0.5, seed=2),
        ]
        plain = run("mp-hars-e", shapes)
        supervised = run(
            "mp-hars-e", shapes, RunConfig(supervision=True, checkpoint=1.0)
        )
        assert _snapshot(supervised) == _snapshot(plain)
        assert supervised.supervisor.evictions == 0


class TestChaosSweep:
    """Seeded lifecycle storms with a degradation budget.

    Crashes, hangs, runaways, and controller restarts all fire from one
    seeded hazard stream; whatever happens, the run must complete, the
    ledger must account for every app, and survivors must still deliver
    most of their target performance.
    """

    SHAPES = [
        RunShape(benchmark="swaptions", n_units=120,
                 target_fraction=0.5, seed=1),
        RunShape(benchmark="bodytrack", n_units=120,
                 target_fraction=0.5, seed=2),
    ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_storm_completes_with_budget(self, seed):
        faults = FaultConfig(
            seed=seed,
            app_crash_rate=0.002,
            app_hang_rate=0.002,
            app_runaway_rate=0.002,
            controller_restart_rate=0.002,
        )
        outcome = run(
            "mp-hars-e",
            self.SHAPES,
            RunConfig(
                faults=faults,
                supervision=SupervisorConfig(grace_factor=4.0),
                checkpoint=2.0,
            ),
        )
        ledger = outcome.supervisor.ledger
        statuses = {
            row["app_name"]: row["status"] for row in ledger.rows()
        }
        assert set(statuses) == {"swaptions-0", "bodytrack-1"}
        # Every app ends accounted for: completed or formally evicted.
        assert set(statuses.values()) <= {"done", "evicted"}
        assert outcome.supervisor.evictions == len(ledger.evicted())
        # Degradation budget: apps that ran to completion still
        # delivered most of their target performance.
        for app in outcome.metrics.apps:
            if statuses[app.app_name] == "done":
                assert app.mean_normalized_perf >= 0.5
