"""Unit tests for the quarantine state machine and its ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.supervision import (
    AppHealth,
    FailureKind,
    QuarantineLedger,
    QuarantineRecord,
    SupervisorConfig,
)


class TestSupervisorConfig:
    def test_defaults_validate(self):
        config = SupervisorConfig()
        assert config.grace_factor > 0
        assert config.evict_factor > config.quarantine_factor > 1

    def test_deadline_scales_with_min_rate(self):
        config = SupervisorConfig(grace_factor=4.0)
        assert config.deadline_s(2.0) == pytest.approx(2.0)
        assert config.deadline_s(0.5) == pytest.approx(8.0)

    def test_deadline_rejects_non_positive_rate(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig().deadline_s(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grace_factor": 0.0},
            {"grace_factor": -1.0},
            {"startup_grace_factor": 0.5},
            {"quarantine_factor": 1.0},
            {"quarantine_factor": 2.0, "evict_factor": 2.0},
            {"quarantine_factor": 2.0, "evict_factor": 1.5},
            {"runaway_margin": 1.0},
            {"runaway_beats": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(**kwargs)


class TestQuarantineLedger:
    def test_ensure_is_idempotent(self):
        ledger = QuarantineLedger()
        first = ledger.ensure("a")
        assert ledger.ensure("a") is first
        assert first.status is AppHealth.HEALTHY

    def test_unknown_record_raises(self):
        with pytest.raises(ConfigurationError):
            QuarantineLedger().record("ghost")

    def test_escalation_stamps_timestamps(self):
        ledger = QuarantineLedger()
        ledger.transition("a", 1.0, AppHealth.SUSPECT, FailureKind.HUNG)
        ledger.transition("a", 2.0, AppHealth.QUARANTINED, FailureKind.HUNG)
        ledger.transition("a", 3.0, AppHealth.EVICTED, FailureKind.HUNG)
        record = ledger.record("a")
        assert record.suspected_at == 1.0
        assert record.quarantined_at == 2.0
        assert record.evicted_at == 3.0
        assert record.failure is FailureKind.HUNG
        assert [status for _, status, _ in record.transitions] == [
            "suspect",
            "quarantined",
            "evicted",
        ]

    def test_recovery_counts_and_clears_failure(self):
        ledger = QuarantineLedger()
        ledger.transition("a", 1.0, AppHealth.SUSPECT, FailureKind.HUNG)
        ledger.transition("a", 2.0, AppHealth.HEALTHY)
        record = ledger.record("a")
        assert record.status is AppHealth.HEALTHY
        assert record.recoveries == 1
        assert record.failure is None
        ledger.transition("a", 3.0, AppHealth.SUSPECT, FailureKind.RUNAWAY)
        ledger.transition("a", 4.0, AppHealth.QUARANTINED, FailureKind.RUNAWAY)
        ledger.transition("a", 5.0, AppHealth.HEALTHY)
        assert record.recoveries == 2

    def test_healthy_to_healthy_is_not_a_recovery(self):
        ledger = QuarantineLedger()
        ledger.ensure("a")
        ledger.transition("a", 1.0, AppHealth.HEALTHY)
        assert ledger.record("a").recoveries == 0

    def test_evicted_ordering(self):
        ledger = QuarantineLedger()
        ledger.transition("b", 5.0, AppHealth.EVICTED, FailureKind.CRASHED)
        ledger.transition("a", 2.0, AppHealth.EVICTED, FailureKind.HUNG)
        ledger.ensure("c")
        assert ledger.evicted() == ("a", "b")

    def test_roundtrip_through_dict(self):
        ledger = QuarantineLedger()
        ledger.transition("a", 1.0, AppHealth.SUSPECT, FailureKind.HUNG, "x")
        ledger.transition("a", 2.0, AppHealth.HEALTHY, detail="resumed")
        ledger.transition("b", 3.0, AppHealth.EVICTED, FailureKind.CRASHED)
        restored = QuarantineLedger.from_dict(ledger.as_dict())
        assert restored.as_dict() == ledger.as_dict()
        assert restored.record("a").recoveries == 1
        assert restored.record("b").failure is FailureKind.CRASHED

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            QuarantineLedger.from_dict({"a": {"status": "weird"}})
        with pytest.raises(ConfigurationError):
            QuarantineLedger.from_dict("not-a-dict")


class TestQuarantineRecord:
    def test_record_roundtrip(self):
        record = QuarantineRecord(
            app_name="a",
            status=AppHealth.QUARANTINED,
            failure=FailureKind.RUNAWAY,
            recoveries=2,
            suspected_at=1.0,
            quarantined_at=2.0,
            transitions=[(1.0, "suspect", "why"), (2.0, "quarantined", "")],
        )
        clone = QuarantineRecord.from_dict(record.as_dict())
        assert clone == record

    def test_from_dict_rejects_missing_fields(self):
        with pytest.raises(ConfigurationError):
            QuarantineRecord.from_dict({"app_name": "a"})
