"""Controller crash+restart: warm checkpoint restore vs cold start."""

import pytest

from repro.core.manager import HarsManager
from repro.experiments.runner import RunConfig, RunShape, build_target, run
from repro.experiments.serialize import checkpoint_payload
from repro.experiments.versions import attach_single_app_version
from repro.faults import FaultConfig, LifecycleEvent
from repro.kernel.bus import ControllerRestored
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.supervision import Checkpointer
from repro.workloads.parsec import make_benchmark

#: Consecutive in-window samples counting as reconverged.
STREAK = 3


def _reconvergence_s(outcome, app_name, t0, horizon=60.0):
    app = next(a for a in outcome.metrics.apps if a.app_name == app_name)
    streak = 0
    for point in outcome.trace.points(app_name):
        if not t0 < point.time_s <= t0 + horizon:
            continue
        if app.target_min <= point.rate <= app.target_max:
            streak += 1
            if streak == STREAK:
                return point.time_s - t0
        else:
            streak = 0
    return horizon


class TestWarmVsColdAcceptance:
    """The PR's acceptance scenario: a mid-run restart of MP-HARS.

    The shapes are chosen so the co-run is feasible but *not* trivially
    in-window (0.55 + 0.35 of each app's solo max): MP-HARS must build
    partitions and settle, so losing its knowledge is visible.
    """

    @pytest.fixture(scope="class")
    def runs(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=400,
                     target_fraction=0.55, seed=1),
            RunShape(benchmark="bodytrack", n_units=400,
                     target_fraction=0.35, seed=2),
        ]
        faults = FaultConfig(seed=3, lifecycle_schedule=(
            LifecycleEvent("controller_restart", at_s=120.0),
        ))
        warm = run(
            "mp-hars-e", shapes, RunConfig(faults=faults, checkpoint=2.0)
        )
        cold = run("mp-hars-e", shapes, RunConfig(faults=faults))
        return warm, cold

    def test_checkpoints_were_written(self, runs):
        warm, _ = runs
        assert warm.checkpoint_store is not None
        assert warm.checkpoint_store.writes > 0
        assert "mp-hars" in warm.checkpoint_store.controller_ids

    def test_warm_restore_reconverges_within_one_period(self, runs):
        warm, _ = runs
        for app in warm.metrics.apps:
            period_s = 5 / app.target_avg
            reconv = _reconvergence_s(warm, app.app_name, 120.0)
            assert reconv <= period_s, (
                f"{app.app_name}: warm restore took {reconv:.2f}s to "
                f"re-enter its window (one adaptation period is "
                f"{period_s:.2f}s)"
            )

    def test_warm_never_slower_than_cold(self, runs):
        warm, cold = runs
        for app in warm.metrics.apps:
            warm_reconv = _reconvergence_s(warm, app.app_name, 120.0)
            cold_reconv = _reconvergence_s(cold, app.app_name, 120.0)
            assert warm_reconv <= cold_reconv


class TestRestoredEventAndFallback:
    def _adapted_sim(self, xu3):
        shape = RunShape(benchmark="swaptions", n_units=400, seed=1)
        target = build_target(xu3, shape)
        sim = Simulation(xu3, tick_s=0.01)
        model = make_benchmark("swaptions", 400, 8)
        model.reset(1)
        app = sim.add_app(SimApp("swaptions", model, target))
        controllers = attach_single_app_version(sim, app, "hars-e")
        checkpointer = Checkpointer(cadence_s=0.5)
        sim.add_controller(checkpointer)
        events = []
        sim.bus.subscribe(ControllerRestored, events.append)
        sim.run(until_s=30.0)
        manager = next(
            c for c in controllers if isinstance(c, HarsManager)
        )
        return sim, manager, checkpointer, events

    def test_warm_restore_publishes_checkpoint_age(self, xu3):
        sim, manager, checkpointer, events = self._adapted_sim(xu3)
        assert manager.checkpoint_store is checkpointer.store
        manager.simulate_restart(sim)
        restored = events[-1]
        assert restored.controller == manager.checkpoint_id
        assert restored.warm is True
        assert restored.checkpoint_time_s is not None
        assert restored.checkpoint_time_s <= sim.clock.now_s

    def test_malformed_checkpoint_falls_back_to_cold(self, xu3):
        sim, manager, checkpointer, events = self._adapted_sim(xu3)
        # A valid envelope whose body is garbage passes the store's
        # schema check but must fail the controller's restore — the
        # restart then completes cold instead of propagating.
        checkpointer.store.put(
            checkpoint_payload(manager.checkpoint_id, 29.0, {"junk": True})
        )
        manager.simulate_restart(sim)
        assert events[-1].warm is False

    def test_missing_store_means_cold(self, xu3):
        sim, manager, _, events = self._adapted_sim(xu3)
        manager.checkpoint_store = None
        manager.simulate_restart(sim)
        assert events[-1].warm is False
        assert events[-1].checkpoint_time_s is None
