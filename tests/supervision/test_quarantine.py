"""Quarantine behaviour: hang/crash escalation, recovery, reclamation."""

import pytest

from repro.experiments.runner import RunConfig, RunShape, build_target, run
from repro.faults import FaultConfig, LifecycleEvent
from repro.heartbeats.registry import HeartbeatRegistry
from repro.kernel.bus import AppEvicted, AppQuarantined, AppSuspected, TickStart
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.supervision import AppHealth, FailureKind, Supervisor, SupervisorConfig
from repro.experiments.versions import attach_single_app_version
from repro.workloads.parsec import make_benchmark


def _watched_sim(xu3, grace_factor=2.0):
    """A baseline-run swaptions sim with a supervised registry attached."""
    shape = RunShape(benchmark="swaptions", n_units=400, seed=0)
    target = build_target(xu3, shape)
    sim = Simulation(xu3, tick_s=0.01)
    model = make_benchmark("swaptions", 400, 8)
    model.reset(0)
    app = sim.add_app(SimApp("swaptions", model, target))
    attach_single_app_version(sim, app, "baseline")
    supervisor = Supervisor(
        SupervisorConfig(grace_factor=grace_factor),
        registry=HeartbeatRegistry(),
    )
    sim.add_controller(supervisor)
    events = []
    for kind in (AppSuspected, AppQuarantined, AppEvicted):
        sim.bus.subscribe(kind, events.append)
    sim.run(until_s=10.0)
    assert app.log.last is not None, "expected heartbeats after 10 s"
    return sim, app, supervisor, events


class TestDeadlineEscalation:
    def test_registry_registration_on_start(self, xu3):
        _, app, supervisor, _ = _watched_sim(xu3)
        assert app.name in supervisor.registry
        assert supervisor.ledger.status_of(app.name) is AppHealth.HEALTHY

    def test_one_level_per_tick_and_eviction(self, xu3):
        sim, app, supervisor, events = _watched_sim(xu3)
        deadline = supervisor.config.deadline_s(app.target.min_rate)
        # A silent gap way past every threshold must still walk the
        # machine one level per tick, publishing each stage.
        silent = app.log.last.time_s + 10 * deadline
        supervisor._on_tick(sim, TickStart(time_s=silent))
        assert supervisor.ledger.status_of(app.name) is AppHealth.SUSPECT
        supervisor._on_tick(sim, TickStart(time_s=silent + 0.01))
        assert supervisor.ledger.status_of(app.name) is AppHealth.QUARANTINED
        supervisor._on_tick(sim, TickStart(time_s=silent + 0.02))
        assert supervisor.ledger.status_of(app.name) is AppHealth.EVICTED
        assert [type(e).__name__ for e in events] == [
            "AppSuspected",
            "AppQuarantined",
            "AppEvicted",
        ]
        assert supervisor.evictions == 1
        record = supervisor.ledger.record(app.name)
        assert record.failure is FailureKind.HUNG
        # Eviction reclaims everything: the app is halted, unpinned, and
        # detached from the heartbeat registry.
        assert app.halted
        assert app.name not in supervisor.registry

    def test_heartbeat_recovers_a_suspect(self, xu3):
        sim, app, supervisor, events = _watched_sim(xu3)
        deadline = supervisor.config.deadline_s(app.target.min_rate)
        supervisor._on_tick(
            sim, TickStart(time_s=app.log.last.time_s + 2 * deadline)
        )
        assert supervisor.ledger.status_of(app.name) is AppHealth.SUSPECT
        supervisor._on_beat(sim, app, app.log.last)
        record = supervisor.ledger.record(app.name)
        assert record.status is AppHealth.HEALTHY
        assert record.recoveries == 1
        assert record.failure is None
        assert not app.halted
        # The event stream shows the suspicion, not an eviction.
        assert [type(e).__name__ for e in events] == ["AppSuspected"]

    def test_quiet_run_stays_healthy(self, xu3):
        sim, app, supervisor, events = _watched_sim(xu3)
        supervisor._on_tick(sim, TickStart(time_s=sim.clock.now_s))
        assert supervisor.ledger.status_of(app.name) is AppHealth.HEALTHY
        assert events == []
        assert supervisor.evictions == 0


class TestLifecycleIntegration:
    @pytest.fixture(scope="class")
    def hang_outcome(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=120,
                     target_fraction=0.75, seed=1),
            RunShape(benchmark="bodytrack", n_units=120,
                     target_fraction=0.75, seed=2),
        ]
        faults = FaultConfig(seed=3, lifecycle_schedule=(
            LifecycleEvent("app_hang", at_s=10.0, target="swaptions-0"),
        ))
        return run(
            "mp-hars-e",
            shapes,
            RunConfig(
                faults=faults,
                supervision=SupervisorConfig(grace_factor=3.0),
            ),
        )

    def test_hung_app_walks_the_state_machine(self, hang_outcome):
        record = hang_outcome.supervisor.ledger.record("swaptions-0")
        assert record.status is AppHealth.EVICTED
        assert record.failure is FailureKind.HUNG
        assert 10.0 < record.suspected_at < record.quarantined_at
        assert record.quarantined_at < record.evicted_at

    def test_survivor_reclaims_cores_within_two_periods(self, hang_outcome):
        ledger = hang_outcome.supervisor.ledger
        evicted_at = ledger.record("swaptions-0").evicted_at
        survivor = next(
            a for a in hang_outcome.metrics.apps
            if a.app_name == "bodytrack-1"
        )
        period_s = 5 / survivor.target_avg
        reclaim_by = evicted_at + 2 * period_s
        owned = [
            p.time_s
            for p in hang_outcome.trace.points("bodytrack-1")
            if evicted_at <= p.time_s <= reclaim_by
            and p.big_cores + p.little_cores > 0
        ]
        assert owned, (
            "survivor never picked up the reclaimed cores within two "
            "adaptation periods of the eviction"
        )
        assert ledger.status_of("bodytrack-1") is AppHealth.DONE

    def test_crash_is_classified_and_evicted_immediately(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=120,
                     target_fraction=0.5, seed=1),
            RunShape(benchmark="bodytrack", n_units=120,
                     target_fraction=0.5, seed=2),
        ]
        faults = FaultConfig(seed=3, lifecycle_schedule=(
            LifecycleEvent("app_crash", at_s=10.0, target="bodytrack-1"),
        ))
        outcome = run(
            "mp-hars-e", shapes, RunConfig(faults=faults, supervision=True)
        )
        record = outcome.supervisor.ledger.record("bodytrack-1")
        assert record.status is AppHealth.EVICTED
        assert record.failure is FailureKind.CRASHED
        # A crash is unambiguous: no grace period, the whole escalation
        # fires at the moment the exit is observed.
        assert record.suspected_at == record.quarantined_at
        assert record.quarantined_at == record.evicted_at
        assert outcome.supervisor.ledger.status_of(
            "swaptions-0"
        ) is AppHealth.DONE
