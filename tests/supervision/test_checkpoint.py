"""Unit tests for the checkpoint envelope, store, and checkpointer."""

import pytest

from repro.core.power_estimator import PowerEstimator
from repro.errors import ConfigurationError
from repro.experiments.serialize import (
    checkpoint_payload,
    power_model_from_dict,
    power_model_to_dict,
    validate_checkpoint,
)
from repro.supervision import CheckpointStore, Checkpointer


class TestEnvelope:
    def test_roundtrip(self):
        payload = checkpoint_payload("mp-hars", 12.5, {"x": 1})
        assert validate_checkpoint(payload) == {"x": 1}
        assert payload["controller"] == "mp-hars"
        assert payload["time_s"] == 12.5

    def test_payload_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            checkpoint_payload("", 0.0, {})
        with pytest.raises(ConfigurationError):
            checkpoint_payload("ok", 0.0, "not-a-dict")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("kind"),
            lambda p: p.update(kind="something-else"),
            lambda p: p.update(schema=999),
            lambda p: p.update(controller=""),
            lambda p: p.update(time_s="yesterday"),
            lambda p: p.update(time_s=True),
            lambda p: p.update(body=[1, 2]),
        ],
    )
    def test_validate_rejects_malformed_envelopes(self, mutate):
        payload = checkpoint_payload("c", 1.0, {})
        mutate(payload)
        with pytest.raises(ConfigurationError):
            validate_checkpoint(payload)

    def test_validate_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            validate_checkpoint(None)


class TestPowerModelSnapshot:
    def test_roundtrip(self, power_estimator):
        snapshot = power_model_to_dict(power_estimator)
        assert snapshot, "calibrated estimator must have fit points"
        restored = power_model_from_dict(snapshot)
        assert isinstance(restored, PowerEstimator)
        assert power_model_to_dict(restored) == snapshot

    @pytest.mark.parametrize(
        "data",
        [
            {},
            "nope",
            {"no-separator": [1.0, 2.0, 0.9]},
            {"big@notanint": [1.0, 2.0, 0.9]},
            {"big@1000": [1.0]},
            {"big@1000": "words"},
        ],
    )
    def test_malformed_snapshots_rejected(self, data):
        with pytest.raises(ConfigurationError):
            power_model_from_dict(data)


class TestCheckpointStore:
    def test_put_keeps_latest_per_controller(self):
        store = CheckpointStore()
        store.put(checkpoint_payload("a", 1.0, {"v": 1}))
        store.put(checkpoint_payload("b", 1.0, {"v": 2}))
        store.put(checkpoint_payload("a", 2.0, {"v": 3}))
        assert len(store) == 2
        assert store.writes == 3
        assert store.controller_ids == ["a", "b"]
        assert store.get("a")["body"] == {"v": 3}
        assert store.get("missing") is None

    def test_put_validates(self):
        store = CheckpointStore()
        with pytest.raises(ConfigurationError):
            store.put({"kind": "junk"})
        assert store.writes == 0

    def test_dump_load_roundtrip(self, tmp_path):
        store = CheckpointStore()
        store.put(checkpoint_payload("a", 1.0, {"v": 1}))
        store.put(checkpoint_payload("b", 2.0, {"v": [1, 2]}))
        path = str(tmp_path / "store.json")
        store.dump(path)
        loaded = CheckpointStore.load(path)
        assert loaded.controller_ids == ["a", "b"]
        assert loaded.get("b")["body"] == {"v": [1, 2]}

    def test_load_rejects_other_json(self, tmp_path):
        path = str(tmp_path / "other.json")
        from repro.experiments.serialize import dump_json

        dump_json({"kind": "perf-watt-comparison"}, path)
        with pytest.raises(ConfigurationError):
            CheckpointStore.load(path)


class TestCheckpointer:
    def test_cadence_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Checkpointer(cadence_s=0.0)

    def test_shared_store_is_allowed(self):
        store = CheckpointStore()
        assert Checkpointer(store=store).store is store
