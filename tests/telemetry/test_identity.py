"""Telemetry must be a pure observer: instrumented runs are
bit-identical to uninstrumented ones on both run paths."""

import dataclasses

from repro.experiments.runner import RunConfig, RunShape, run, run_single

def _snapshot(outcome):
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


class TestSingleAppIdentity:
    def test_hars_ei_run_is_bit_identical(self):
        shape = RunShape(benchmark="swaptions", n_units=120, seed=3)
        plain = run("hars-ei", shape)
        instrumented = run("hars-ei", shape, RunConfig(telemetry=True))
        assert _snapshot(instrumented) == _snapshot(plain)
        assert plain.telemetry is None
        assert instrumented.telemetry is not None

    def test_legacy_run_single_matches_run(self):
        shape = RunShape(benchmark="bodytrack", n_units=80, seed=5)
        config = RunConfig(telemetry=True)
        assert _snapshot(run_single("hars-e", shape, config=config)) == (
            _snapshot(run("hars-e", shape, config))
        )


class TestMultiAppIdentity:
    SHAPES = [
        RunShape(benchmark="swaptions", n_units=100,
                 target_fraction=0.5, seed=1),
        RunShape(benchmark="bodytrack", n_units=100,
                 target_fraction=0.5, seed=2),
    ]

    def test_mp_hars_e_run_is_bit_identical(self):
        plain = run("mp-hars-e", self.SHAPES)
        instrumented = run("mp-hars-e", self.SHAPES, RunConfig(telemetry=True))
        assert _snapshot(instrumented) == _snapshot(plain)

    def test_per_app_series_cover_every_app(self):
        from repro.telemetry import flatten_snapshot

        outcome = run("mp-hars-e", self.SHAPES, RunConfig(telemetry=True))
        flat = flatten_snapshot(outcome.telemetry.registry.snapshot())
        apps = {
            dict(labels).get("app")
            for (name, labels), _ in flat.items()
            if name == "heartbeats_total"
        }
        assert apps == {"swaptions-0", "bodytrack-1"}
