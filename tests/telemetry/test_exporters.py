"""Exporter round-trips: JSONL, Prometheus, CSV over one snapshot."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.tracing import TracePoint, TraceRecorder
from repro.telemetry import (
    MetricsRegistry,
    flatten_snapshot,
    parse_prometheus,
    read_jsonl,
    snapshot_from_jsonl,
    snapshot_to_csv,
    snapshot_to_jsonl,
    snapshot_to_prometheus,
    summary_table,
    trace_to_csv,
    write_jsonl,
)


@pytest.fixture()
def registry():
    """A registry exercising all four instrument kinds and labels."""
    reg = MetricsRegistry()
    reg.counter("beats_total", "Heartbeats.").inc(42, app="sw-0")
    reg.counter("beats_total", "Heartbeats.").inc(7, app="bt-1")
    reg.gauge("cores", "Allocated cores.").set(3, app="sw-0", cluster="big")
    hist = reg.histogram("rate", "Observed rates.", buckets=(1.0, 2.5, 5.0))
    hist.observe(0.4)
    hist.observe(1.7)
    hist.observe(99.0)
    reg.timer("plan_s", "Plan cost.").record(0.125, controller="hars")
    reg.gauge("run_info", "Run labels.").set(
        1.0, version="hars-e", note='quo"te,comma'
    )
    return reg


class TestJsonlRoundTrip:
    def test_exact_snapshot_reconstruction(self, registry):
        snapshot = registry.snapshot()
        assert snapshot_from_jsonl(snapshot_to_jsonl(snapshot)) == snapshot

    def test_file_round_trip(self, registry, tmp_path):
        snapshot = registry.snapshot()
        path = str(tmp_path / "telemetry.jsonl")
        write_jsonl(snapshot, path)
        assert read_jsonl(path) == snapshot

    def test_schema_mismatch_rejected(self, registry):
        text = snapshot_to_jsonl(registry.snapshot())
        bad = text.replace('"schema": 1', '"schema": 99', 1)
        with pytest.raises(ConfigurationError):
            snapshot_from_jsonl(bad)

    def test_orphan_series_rejected(self):
        with pytest.raises(ConfigurationError):
            snapshot_from_jsonl(
                '{"record": "header", "schema": 1}\n'
                '{"record": "series", "name": "x", "labels": {}, "value": 1}\n'
            )


class TestPrometheusRoundTrip:
    def test_flat_samples_survive(self, registry):
        snapshot = registry.snapshot()
        text = snapshot_to_prometheus(snapshot)
        assert parse_prometheus(text) == flatten_snapshot(snapshot)

    def test_histogram_uses_cumulative_buckets(self, registry):
        text = snapshot_to_prometheus(registry.snapshot())
        assert 'rate_bucket{le="1.0"} 1.0' in text
        assert 'rate_bucket{le="2.5"} 2.0' in text
        assert 'rate_bucket{le="+Inf"} 3.0' in text
        assert "rate_count 3.0" in text

    def test_label_escaping_round_trips(self, registry):
        flat = parse_prometheus(snapshot_to_prometheus(registry.snapshot()))
        labels = dict(
            next(k[1] for k in flat if k[0] == "run_info")
        )
        assert labels["note"] == 'quo"te,comma'

    def test_help_and_type_lines_present(self, registry):
        text = snapshot_to_prometheus(registry.snapshot())
        assert "# HELP beats_total Heartbeats." in text
        assert "# TYPE beats_total counter" in text
        assert "# TYPE rate histogram" in text


class TestCsvAndSummary:
    def test_csv_covers_every_flat_sample(self, registry):
        snapshot = registry.snapshot()
        lines = snapshot_to_csv(snapshot).strip().splitlines()
        assert lines[0] == "sample,labels,value"
        assert len(lines) - 1 == len(flatten_snapshot(snapshot))

    def test_summary_table_renders(self, registry):
        table = summary_table(registry.snapshot())
        assert "beats_total" in table
        assert "app=sw-0" in table

    def test_empty_registry_summary(self):
        assert "no telemetry" in summary_table(MetricsRegistry().snapshot())


class TestTraceCsv:
    def test_follows_recorder_columns(self):
        trace = TraceRecorder()
        trace.record(
            "sw-0",
            TracePoint(
                time_s=0.5,
                hb_index=1,
                rate=None,
                big_cores=2,
                little_cores=4,
                big_freq_mhz=1400,
                little_freq_mhz=1100,
            ),
        )
        text = trace_to_csv(trace)
        header, row = text.strip().splitlines()
        assert header == "app,time_s,hb_index," + ",".join(trace.columns())
        assert row.startswith("sw-0,0.5,1,")
        # A None rate exports as an empty cell, not "None".
        assert ",None," not in row
