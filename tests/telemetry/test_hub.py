"""Hub wiring: bus events, MAPE recorders, and finalize harvesting."""

import pytest

from repro.core.manager import DEFAULT_STATE_EVAL_COST_S
from repro.experiments.runner import RunConfig, RunShape, run
from repro.faults import FaultConfig
from repro.telemetry import TelemetryConfig, flatten_snapshot


@pytest.fixture(scope="module")
def instrumented(xu3):
    """One instrumented HARS-E run, shared by the wiring assertions."""
    shape = RunShape("swaptions", n_units=60)
    return run(
        "hars-e", shape, RunConfig(spec=xu3, telemetry=True)
    )


@pytest.fixture(scope="module")
def flat(instrumented):
    return flatten_snapshot(instrumented.telemetry.registry.snapshot())


class TestBusWiring:
    def test_heartbeats_match_the_app_log(self, instrumented, flat):
        assert flat[("heartbeats_total", (("app", "swaptions"),))] == 60

    def test_finished_app_counted(self, flat):
        assert flat[("apps_finished_total", (("app", "swaptions"),))] == 1

    def test_states_applied_positive(self, flat):
        assert flat[("states_applied_total", (("app", "swaptions"),))] > 0

    def test_run_info_labels(self, flat):
        assert (
            flat[
                (
                    "run_info",
                    (("profile", "fast"), ("version", "hars-e")),
                )
            ]
            == 1.0
        )


class TestMapeWiring:
    def test_phase_counts_are_consistent(self, flat):
        phases = {
            labels: value
            for (name, labels), value in flat.items()
            if name == "mape_phase_total"
        }
        by_phase = {}
        for labels, value in phases.items():
            by_phase[dict(labels)["phase"]] = value
        # Monitors happen per heartbeat; in-window cycles stop after
        # Analyze; Execute only runs when the plan applies a new state.
        assert (
            by_phase["monitor"]
            >= by_phase["analyze"]
            >= by_phase["plan"]
            >= by_phase["execute"]
            >= 1
        )

    def test_search_counters_collected(self, instrumented, flat):
        explored = sum(
            value
            for (name, _), value in flat.items()
            if name == "search_states_explored_total"
        )
        pruned = sum(
            value
            for (name, _), value in flat.items()
            if name == "search_pruned_total"
        )
        assert explored > 0
        # HARS-E sweeps a ±box with a Manhattan-distance cut; some box
        # corners must have been pruned over a whole run.
        assert pruned > 0

    def test_plan_timer_carries_modelled_cost(self, flat):
        plan_s = sum(
            value
            for (name, labels), value in flat.items()
            if name == "mape_plan_seconds_sum_s"
        )
        explored = sum(
            value
            for (name, _), value in flat.items()
            if name == "search_states_explored_total"
        )
        # Timer sum == states explored x the modelled per-state cost —
        # deterministic, never host wall time.
        assert plan_s == pytest.approx(explored * DEFAULT_STATE_EVAL_COST_S)


class TestFinalizeHarvest:
    def test_tick_count_and_sim_time(self, flat):
        ticks = flat[("sim_ticks_total", ())]
        sim_time = flat[("sim_time_seconds", ())]
        assert ticks > 0
        assert sim_time == pytest.approx(ticks * 0.01)

    def test_energy_matches_the_metrics(self, instrumented, flat):
        avg_power = flat[("power_watts", (("rail", "total"),))]
        assert avg_power == pytest.approx(instrumented.metrics.avg_power_w)
        energy = flat[("energy_joules_total", (("rail", "total"),))]
        sim_time = flat[("sim_time_seconds", ())]
        assert energy == pytest.approx(avg_power * sim_time)

    def test_estimation_cache_stats_harvested(self, instrumented, flat):
        lookups = {
            dict(labels)["result"]: value
            for (name, labels), value in flat.items()
            if name == "estimation_cache_lookups"
        }
        assert set(lookups) == {"hits", "misses", "builds", "reuses"}

    def test_trace_points_match_recorder(self, instrumented, flat):
        assert flat[("trace_points_total", ())] == len(instrumented.trace)

    def test_finalize_is_idempotent(self, instrumented, flat):
        again = flatten_snapshot(instrumented.telemetry.snapshot())
        assert again == flat


class TestConfigKnobs:
    def test_tick_and_power_series_can_be_disabled(self, xu3):
        outcome = run(
            "hars-e",
            RunShape("swaptions", n_units=40),
            RunConfig(
                spec=xu3,
                telemetry=TelemetryConfig(
                    track_ticks=False, track_power=False
                ),
            ),
        )
        flat = flatten_snapshot(outcome.telemetry.registry.snapshot())
        assert ("sim_ticks_total", ()) not in flat
        assert not any(name == "power_watts" for name, _ in flat)
        # Everything event-driven still collects.
        assert flat[("heartbeats_total", (("app", "swaptions"),))] == 40


class TestFaultEvents:
    def test_injections_counted_by_kind(self, xu3):
        outcome = run(
            "hars-e",
            RunShape("swaptions", n_units=40),
            RunConfig(
                spec=xu3,
                faults=FaultConfig.defaults(),
                telemetry=True,
            ),
        )
        flat = flatten_snapshot(outcome.telemetry.registry.snapshot())
        injected = sum(
            value
            for (name, _), value in flat.items()
            if name == "faults_injected_total"
        )
        assert injected == outcome.fault_injector.total_injected
        assert injected > 0
