"""Prometheus exposition escaping regressions.

Two latent bugs pinned here:

* ``parse_prometheus`` unquoted label values with ``str.strip('"')``,
  which also eats the *escaped* quote of a value that legitimately ends
  in ``"`` (serialized as ``"...\\""``) — the round-trip silently
  corrupted the value.
* HELP text went out unescaped, so a help string containing a newline
  split the comment and left a junk half-line in the exposition.
"""

import pytest

from repro.telemetry.exporters import parse_prometheus, snapshot_to_prometheus
from repro.telemetry.registry import MetricsRegistry, flatten_snapshot


def _round_trip(registry):
    snapshot = registry.snapshot()
    text = snapshot_to_prometheus(snapshot)
    return flatten_snapshot(snapshot), parse_prometheus(text)


class TestLabelValueEscaping:
    @pytest.mark.parametrize(
        "value",
        [
            'ends-in-quote"',
            '"fully quoted"',
            "back\\slash",
            "new\nline",
            'mix\\"of\nall"',
            'trailing-backslash\\',
            '""',
        ],
    )
    def test_hostile_label_values_round_trip(self, value):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits").inc(3.0, host=value)
        flat, parsed = _round_trip(registry)
        assert parsed == flat
        assert parsed[("hits_total", (("host", value),))] == 3.0

    def test_multiple_hostile_labels_on_one_sample(self):
        registry = MetricsRegistry()
        registry.gauge("g", "gauge").set(
            1.5, a='x"', b="y,z", c="p\nq"
        )
        flat, parsed = _round_trip(registry)
        assert parsed == flat

    def test_histogram_labels_round_trip(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.5, node='node"7')
        flat, parsed = _round_trip(registry)
        assert parsed == flat


class TestHelpEscaping:
    def test_newline_in_help_stays_one_comment_line(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "first line\nsecond line").inc()
        text = snapshot_to_prometheus(registry.snapshot())
        help_lines = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert help_lines == ["# HELP c_total first line\\nsecond line"]
        # The stray half-line must not exist as a bogus sample.
        parsed = parse_prometheus(text)
        assert set(parsed) == {("c_total", ())}

    def test_backslash_in_help_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", "path C:\\temp").set(1.0)
        text = snapshot_to_prometheus(registry.snapshot())
        assert "# HELP g path C:\\\\temp" in text
