"""Instrument semantics: counters, gauges, histograms, timers, labels."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c", "help")
        assert counter.child().value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.child().value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c", "help")
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)

    def test_labelled_children_are_independent(self):
        counter = Counter("c", "help")
        counter.inc(1, app="a")
        counter.inc(2, app="b")
        series = dict(
            (labels, child.value) for labels, child in counter.series()
        )
        assert series == {(("app", "a"),): 1.0, (("app", "b"),): 2.0}

    def test_child_is_cached_per_label_set(self):
        counter = Counter("c", "help")
        assert counter.child(a="1", b="2") is counter.child(b="2", a="1")


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g", "help")
        gauge.set(5.0)
        gauge.set(2.0)
        assert gauge.child().value == 2.0

    def test_gauges_accept_negative_values(self):
        gauge = Gauge("g", "help")
        gauge.set(-3.0)
        assert gauge.child().value == -3.0


class TestHistogram:
    def test_cumulative_bucket_counts(self):
        hist = Histogram("h", "help", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        child = hist.child()
        # Cumulative convention: each bucket counts observations <= le.
        assert child.counts == [2, 3, 4]  # le=1, le=5, +Inf
        assert child.count == 4
        assert child.sum == pytest.approx(104.2)

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", "help", buckets=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", "help", buckets=())


class TestTimer:
    def test_record_accumulates_count_sum_max(self):
        timer = Timer("t", "help")
        timer.record(0.5)
        timer.record(2.0)
        child = timer.child()
        assert child.count == 2
        assert child.sum_s == pytest.approx(2.5)
        assert child.max_s == 2.0

    def test_span_uses_the_provided_clock(self):
        now = [10.0]
        timer = Timer("t", "help")
        with timer.span(lambda: now[0]):
            now[0] = 10.5
        child = timer.child()
        assert child.count == 1
        assert child.sum_s == pytest.approx(0.5)

    def test_negative_duration_rejected(self):
        timer = Timer("t", "help")
        with pytest.raises(ConfigurationError):
            timer.record(-0.1)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", "help") is reg.counter("x", "help")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", "help")
        with pytest.raises(ConfigurationError):
            reg.gauge("x", "help")

    def test_snapshot_is_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("zz", "help").inc(app="b")
            reg.counter("zz", "help").inc(app="a")
            reg.gauge("aa", "help").set(1.0)
            return reg.snapshot()

        first, second = build(), build()
        assert first == second
        names = [i["name"] for i in first["instruments"]]
        assert names == sorted(names)
        series = first["instruments"][-1]["series"]
        labels = [s["labels"] for s in series]
        assert labels == sorted(labels, key=lambda d: sorted(d.items()))

    def test_snapshot_roundtrips_through_flatten(self):
        from repro.telemetry import flatten_snapshot

        reg = MetricsRegistry()
        reg.counter("c", "help").inc(3, app="x")
        reg.histogram("h", "help", buckets=(1.0,)).observe(0.5)
        reg.timer("t", "help").record(2.0)
        flat = flatten_snapshot(reg.snapshot())
        assert flat[("c", (("app", "x"),))] == 3.0
        assert flat[("h_bucket", (("le", "1.0"),))] == 1.0
        assert flat[("h_bucket", (("le", "+Inf"),))] == 1.0
        assert flat[("h_count", ())] == 1.0
        assert flat[("t_sum_s", ())] == 2.0
