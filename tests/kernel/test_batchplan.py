"""Scalar/vector planner parity: the batchplan bit-identity contract.

The vector backend (:mod:`repro.kernel.batchplan`) must reproduce the
scalar Algorithm 2 oracle exactly — same selected state, same floats in
the winner, same ``SearchResult`` counters — on every input.  The
randomized cross-check here sweeps seeds over spaces, targets, rates,
structural filters and guardrail vetoes, including the forced-fallback
and estimation-failure edges; the equality asserted is dataclass
equality over :class:`~repro.core.search.SearchResult`, i.e. exact
float comparison, not approx.
"""

import dataclasses
import random

import pytest

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import SearchSpace
from repro.core.search import get_next_sys_state
from repro.core.state import SystemState, from_indices, max_state
from repro.errors import EstimationError
from repro.experiments.runner import RunConfig, RunShape, run
from repro.guardrails.layer import BudgetVeto
from repro.heartbeats.targets import PerformanceTarget
from repro.kernel.batchplan import (
    PlanRequest,
    PlanService,
    batch_next_sys_state,
)
from repro.kernel.estimation import EstimationLayer
from repro.platform.spec import odroid_xu3

SPEC = odroid_xu3()
POWER = calibrate(SPEC)
PERF = PerformanceEstimator()

SPACES = (
    SearchSpace(m=1, n=0, d=1),  # HARS-I overperform
    SearchSpace(m=0, n=1, d=1),  # HARS-I underperform
    SearchSpace(m=4, n=4, d=7),  # HARS-E / HARS-EI
    SearchSpace(m=2, n=3, d=4),
    SearchSpace(m=8, n=8, d=30),  # whole grid, no effective prune
)


def random_state(rng):
    while True:
        c_big = rng.randint(0, SPEC.big.n_cores)
        c_little = rng.randint(0, SPEC.little.n_cores)
        if c_big == 0 and c_little == 0:
            continue
        return from_indices(
            SPEC,
            c_big,
            c_little,
            rng.randrange(len(SPEC.big.frequencies_mhz)),
            rng.randrange(len(SPEC.little.frequencies_mhz)),
        )


def random_target(rng):
    avg = rng.uniform(0.5, 40.0)
    half = avg * rng.uniform(0.01, 0.3)
    return PerformanceTarget(
        min_rate=avg - half, avg_rate=avg, max_rate=avg + half
    )


def both(scenario, perf=PERF, power=POWER):
    """Run one scenario through both backends on fresh layers."""
    scalar_layer = EstimationLayer(perf, power)
    vector_layer = EstimationLayer(perf, power)
    scalar = get_next_sys_state(
        spec=SPEC,
        perf_estimator=scalar_layer.perf,
        power_estimator=scalar_layer.power,
        **scenario,
    )
    vector = batch_next_sys_state(
        spec=SPEC, estimation=vector_layer, **scenario
    )
    return scalar, vector


class EvenCoresOnly:
    """A plain-callable structural filter (no box_mask): exercises the
    vector path's per-candidate Python fallback."""

    def __call__(self, candidate, current):
        return candidate.c_big % 2 == 0


class CappedCores:
    """A mask-capable structural filter."""

    def __init__(self, max_big, max_little):
        self.max_big = max_big
        self.max_little = max_little

    def __call__(self, candidate, current):
        return (
            candidate.c_big <= self.max_big
            and candidate.c_little <= self.max_little
        )

    def box_mask(self, box):
        return (box.c_big <= self.max_big) & (
            box.c_little <= self.max_little
        )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_unfiltered_sweeps_are_bit_identical(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            scenario = dict(
                current=random_state(rng),
                observed_rate=rng.uniform(0.1, 50.0),
                n_threads=rng.choice([1, 2, 4, 8, 16]),
                target=random_target(rng),
                space=rng.choice(SPACES),
            )
            scalar, vector = both(scenario)
            assert scalar == vector

    @pytest.mark.parametrize("seed", range(4))
    def test_filtered_sweeps_are_bit_identical(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(25):
            filters = [
                None,
                EvenCoresOnly(),
                CappedCores(
                    rng.randint(0, SPEC.big.n_cores),
                    rng.randint(0, SPEC.little.n_cores),
                ),
            ]
            scenario = dict(
                current=random_state(rng),
                observed_rate=rng.uniform(0.1, 50.0),
                n_threads=rng.choice([2, 4, 8]),
                target=random_target(rng),
                space=rng.choice(SPACES),
                candidate_filter=rng.choice(filters),
            )
            scalar, vector = both(scenario)
            assert scalar == vector

    @pytest.mark.parametrize("seed", range(4))
    def test_guard_vetoed_sweeps_are_bit_identical(self, seed):
        # BudgetVeto is the guardrail layer's real filter class; both
        # its scalar __call__ and its box_mask come under test, with
        # caps tight enough to veto most of the neighbourhood and the
        # downhill-escape branch (current_power known) active.
        rng = random.Random(2000 + seed)
        for _ in range(25):
            current = random_state(rng)
            n_threads = rng.choice([2, 4, 8])
            layer = EstimationLayer(PERF, POWER)
            try:
                estimate = layer.perf.estimate(current, n_threads)
                current_power = layer.power.estimate(current, estimate)
            except EstimationError:
                current_power = None
            cap = rng.uniform(0.2, 6.0)
            scenario = dict(
                current=current,
                observed_rate=rng.uniform(0.1, 50.0),
                n_threads=n_threads,
                target=random_target(rng),
                space=rng.choice(SPACES),
                guard_filter=BudgetVeto(
                    layer,
                    n_threads,
                    cap,
                    current_power if rng.random() < 0.7 else None,
                ),
            )
            scalar, vector = both(scenario)
            assert scalar == vector
            if scalar.filtered:
                break


class TestEdgeCases:
    def test_forced_fallback_when_filter_rejects_everything(self):
        scenario = dict(
            current=max_state(SPEC),
            observed_rate=5.0,
            n_threads=8,
            target=PerformanceTarget(4.0, 5.0, 6.0),
            space=SearchSpace(m=4, n=4, d=7),
            candidate_filter=lambda candidate, current: False,
        )
        scalar, vector = both(scenario)
        assert scalar == vector
        assert vector.forced_fallback
        assert vector.states_explored == 0

    def test_missing_power_coefficients_count_as_failures(self):
        # Drop the coefficients of half the big-cluster frequencies:
        # candidates there fail estimation in both backends, and the
        # counts must agree exactly.
        fitted = dict(
            (key, POWER.coefficients(*key)) for key in POWER.fitted_points
        )
        partial = type(POWER)(
            {
                key: value
                for key, value in fitted.items()
                if not (
                    key[0] == "big"
                    and SPEC.big.frequencies_mhz.index(key[1]) % 2 == 0
                )
            }
        )
        rng = random.Random(42)
        saw_failures = False
        for _ in range(30):
            scenario = dict(
                current=random_state(rng),
                observed_rate=rng.uniform(0.5, 20.0),
                n_threads=8,
                target=random_target(rng),
                space=rng.choice(SPACES),
            )
            # When the current state itself sits on a dropped frequency
            # and every admitted neighbour fails too, the forced
            # fallback re-raises — in both backends alike.
            try:
                scalar = get_next_sys_state(
                    spec=SPEC,
                    perf_estimator=EstimationLayer(PERF, partial).perf,
                    power_estimator=EstimationLayer(PERF, partial).power,
                    **scenario,
                )
            except EstimationError:
                with pytest.raises(EstimationError):
                    batch_next_sys_state(
                        spec=SPEC,
                        estimation=EstimationLayer(PERF, partial),
                        **scenario,
                    )
                continue
            vector = batch_next_sys_state(
                spec=SPEC,
                estimation=EstimationLayer(PERF, partial),
                **scenario,
            )
            assert scalar == vector
            saw_failures = saw_failures or vector.estimation_failures > 0
        assert saw_failures

    def test_invalid_current_state_raises_in_both_backends(self):
        class RaisingPerf:
            """Stock model except it cannot estimate 4-big states."""

            def estimate(self, state, n_threads):
                if state.c_big == SPEC.big.n_cores:
                    raise EstimationError("unmodelled state")
                return PERF.estimate(state, n_threads)

            def estimate_rate(
                self, candidate, current, observed_rate, n_threads
            ):
                cap_candidate = self.estimate(candidate, n_threads).capacity
                cap_current = self.estimate(current, n_threads).capacity
                return observed_rate * cap_candidate / cap_current

        current = max_state(SPEC)  # c_big == 4: current is unestimable
        scenario = dict(
            current=current,
            observed_rate=5.0,
            n_threads=8,
            target=PerformanceTarget(4.0, 5.0, 6.0),
            space=SearchSpace(m=1, n=1, d=2),
        )
        with pytest.raises(EstimationError):
            get_next_sys_state(
                spec=SPEC,
                perf_estimator=EstimationLayer(RaisingPerf(), POWER).perf,
                power_estimator=EstimationLayer(RaisingPerf(), POWER).power,
                **scenario,
            )
        with pytest.raises(EstimationError):
            batch_next_sys_state(
                spec=SPEC,
                estimation=EstimationLayer(RaisingPerf(), POWER),
                **scenario,
            )

    def test_partially_invalid_neighbourhood_is_bit_identical(self):
        class RaisingPerf:
            def estimate(self, state, n_threads):
                if state.c_big == SPEC.big.n_cores:
                    raise EstimationError("unmodelled state")
                return PERF.estimate(state, n_threads)

            def estimate_rate(
                self, candidate, current, observed_rate, n_threads
            ):
                cap_candidate = self.estimate(candidate, n_threads).capacity
                cap_current = self.estimate(current, n_threads).capacity
                return observed_rate * cap_candidate / cap_current

        rng = random.Random(7)
        for _ in range(15):
            while True:
                current = random_state(rng)
                if current.c_big < SPEC.big.n_cores:
                    break
            scenario = dict(
                current=current,
                observed_rate=rng.uniform(0.5, 20.0),
                n_threads=8,
                target=random_target(rng),
                space=SearchSpace(m=4, n=4, d=7),
            )
            scalar, vector = both(scenario, perf=RaisingPerf())
            assert scalar == vector


class TestTensorInvalidation:
    def test_checkpoint_restore_drops_tensors(self):
        # restore_checkpoint re-adopts the fitted power model through
        # the estimator setter; a tensor built for the old model must
        # not survive it.
        from repro.core.policy import HARS_E
        from repro.core.manager import HarsManager

        manager = HarsManager(
            app_name="x264",
            policy=HARS_E,
            perf_estimator=PERF,
            power_estimator=POWER,
        )
        layer = manager.knowledge.estimation
        stale = layer.tensor(SPEC, 8)
        payload = manager.checkpoint(now_s=1.0)
        manager.restore_checkpoint(sim=None, payload=payload)
        assert layer._tensors == {}
        assert layer.tensor(SPEC, 8) is not stale

    def test_manager_setter_swap_drops_tensors(self):
        from repro.core.policy import HARS_E
        from repro.core.manager import HarsManager

        manager = HarsManager(
            app_name="x264",
            policy=HARS_E,
            perf_estimator=PERF,
            power_estimator=POWER,
        )
        layer = manager.knowledge.estimation
        stale = layer.tensor(SPEC, 8)
        manager.power_estimator = POWER
        assert layer.tensor(SPEC, 8) is not stale


class TestPlanService:
    def test_plan_many_matches_sequential_plans(self):
        rng = random.Random(11)
        layer = EstimationLayer(PERF, POWER)
        requests = [
            PlanRequest(
                spec=SPEC,
                current=random_state(rng),
                observed_rate=rng.uniform(0.5, 20.0),
                n_threads=8,
                target=random_target(rng),
                space=SearchSpace(m=4, n=4, d=7),
                estimation=layer,
            )
            for _ in range(6)
        ]
        service = PlanService()
        batched = service.plan_many(requests)
        sequential = [
            batch_next_sys_state(
                spec=request.spec,
                current=request.current,
                observed_rate=request.observed_rate,
                n_threads=request.n_threads,
                target=request.target,
                space=request.space,
                estimation=request.estimation,
            )
            for request in requests
        ]
        assert batched == sequential
        assert service.batch_sizes == [6]
        assert service.plans == 6
        # All six plans shared one tensor build.
        assert layer.stats()["tensor_builds"] == 1


def _snapshot(outcome):
    traces = tuple(
        (name, outcome.trace.points(name))
        for name in sorted(outcome.trace.app_names)
    )
    return dataclasses.asdict(outcome.metrics), traces


class TestEndToEndProfileParity:
    SHAPE = RunShape(
        benchmark="swaptions",
        n_units=80,
        n_threads=8,
        target_fraction=0.5,
        tolerance=0.1,
        seed=7,
    )

    @pytest.mark.parametrize("version", ["hars-i", "hars-e", "hars-ei"])
    def test_single_app_versions(self, version):
        fast = run(version, self.SHAPE, RunConfig(profile="fast"))
        vector = run(version, self.SHAPE, RunConfig(profile="vector"))
        assert _snapshot(fast) == _snapshot(vector)

    def test_mp_hars_multi_app(self):
        shapes = [
            RunShape(
                benchmark="swaptions",
                n_units=60,
                n_threads=4,
                target_fraction=0.5,
                tolerance=0.1,
                seed=3,
            ),
            RunShape(
                benchmark="bodytrack",
                n_units=60,
                n_threads=4,
                target_fraction=0.6,
                tolerance=0.1,
                seed=4,
            ),
        ]
        fast = run("mp-hars-e", shapes, RunConfig(profile="fast"))
        vector = run("mp-hars-e", shapes, RunConfig(profile="vector"))
        assert _snapshot(fast) == _snapshot(vector)

    def test_vector_run_exports_planner_telemetry(self):
        from repro.telemetry import flatten_snapshot

        outcome = run(
            "hars-e",
            self.SHAPE,
            RunConfig(profile="vector", telemetry=True),
        )
        flat = flatten_snapshot(outcome.telemetry.registry.snapshot())
        backends = {
            dict(labels).get("backend")
            for (name, labels) in flat
            if name == "planner_backend"
        }
        assert backends == {"vector"}
        builds = sum(
            value
            for (name, labels), value in flat.items()
            if name == "estimation_cache_lookups"
            and dict(labels).get("model") == "tensor"
            and dict(labels).get("result") == "builds"
        )
        assert builds >= 1
        rebuilds = sum(
            value
            for (name, _), value in flat.items()
            if name == "planner_tensor_rebuilds_total"
        )
        assert rebuilds >= 1
        assert any(
            name.startswith("planner_batch_apps") for name, _ in flat
        )
