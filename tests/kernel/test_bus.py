"""Unit tests for the kernel event bus."""

from dataclasses import dataclass

from repro.kernel.bus import (
    LATE,
    AppFinished,
    Event,
    EventBus,
    TickStart,
)


@dataclass(frozen=True)
class Ping(Event):
    value: int


@dataclass(frozen=True)
class Pong(Event):
    value: int


class TestDispatch:
    def test_handlers_run_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Ping, lambda e: seen.append("a"))
        bus.subscribe(Ping, lambda e: seen.append("b"))
        bus.subscribe(Ping, lambda e: seen.append("c"))
        bus.publish(Ping(1))
        assert seen == ["a", "b", "c"]

    def test_priority_orders_across_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Ping, lambda e: seen.append("late"), priority=LATE)
        bus.subscribe(Ping, lambda e: seen.append("default"))
        bus.subscribe(Ping, lambda e: seen.append("early"), priority=-1)
        bus.publish(Ping(1))
        assert seen == ["early", "default", "late"]

    def test_dispatch_is_by_exact_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Ping, lambda e: seen.append(("ping", e.value)))
        bus.subscribe(Pong, lambda e: seen.append(("pong", e.value)))
        bus.publish(Pong(7))
        assert seen == [("pong", 7)]

    def test_publish_without_subscribers_is_a_noop(self):
        EventBus().publish(TickStart(time_s=0.0))  # must not raise

    def test_event_payload_reaches_handler(self):
        bus = EventBus()
        seen = []
        bus.subscribe(AppFinished, lambda e: seen.append((e.app_name, e.time_s)))
        bus.publish(AppFinished(app_name="swaptions", time_s=1.5))
        assert seen == [("swaptions", 1.5)]


class TestSubscriptionLifecycle:
    def test_subscribe_returns_the_handler(self):
        bus = EventBus()
        handler = lambda e: None  # noqa: E731
        assert bus.subscribe(Ping, handler) is handler

    def test_unsubscribe_removes_handler(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(Ping, lambda e: seen.append(e.value))
        bus.unsubscribe(Ping, handler)
        bus.publish(Ping(1))
        assert seen == []
        assert bus.subscriber_count(Ping) == 0

    def test_unsubscribe_unknown_handler_is_a_noop(self):
        bus = EventBus()
        bus.unsubscribe(Ping, lambda e: None)  # must not raise

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count(Ping) == 0
        bus.subscribe(Ping, lambda e: None)
        bus.subscribe(Ping, lambda e: None)
        assert bus.subscriber_count(Ping) == 2


class TestReentrancy:
    def test_handler_may_publish_further_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(Ping, lambda e: bus.publish(Pong(e.value + 1)))
        bus.subscribe(Pong, lambda e: seen.append(e.value))
        bus.publish(Ping(1))
        assert seen == [2]

    def test_subscribing_mid_dispatch_affects_later_events_only(self):
        bus = EventBus()
        seen = []

        def add_subscriber(event):
            bus.subscribe(Ping, lambda e: seen.append(e.value))

        bus.subscribe(Ping, add_subscriber)
        bus.publish(Ping(1))
        assert seen == []  # new handler missed the in-flight event
        bus.publish(Ping(2))
        assert seen == [2]
