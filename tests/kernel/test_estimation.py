"""The cached estimation layer must be invisible: bit-identical results.

The core property: an Algorithm 2 sweep through the cached layer picks
the same state with the same estimated floats as a sweep through the
raw estimators — warm or cold — across randomized current states,
observed rates, and targets (the full HARS-E box).  Plus the
invalidation protocol: swapping a model drops the stale cache.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E
from repro.core.search import get_next_sys_state
from repro.core.state import SystemState, from_indices
from repro.heartbeats.targets import PerformanceTarget, Satisfaction
from repro.kernel.estimation import (
    CachedPerformanceEstimator,
    CachedPowerEstimator,
    EstimationLayer,
)
from repro.platform.spec import odroid_xu3

_SPEC = odroid_xu3()
_PERF = PerformanceEstimator()
_POWER = calibrate(_SPEC)
# One warm layer shared across all hypothesis examples: later examples
# hit entries earlier examples cached, which is exactly the production
# access pattern the identity property must survive.
_LAYER = EstimationLayer(_PERF, _POWER, cached=True)

_CB = st.integers(min_value=0, max_value=4)
_CL = st.integers(min_value=0, max_value=4)
_IFB = st.integers(min_value=0, max_value=8)
_IFL = st.integers(min_value=0, max_value=5)
_RATE = st.floats(min_value=0.1, max_value=10.0)
_CENTER = st.floats(min_value=0.2, max_value=8.0)


def _sweep(current, rate, target, perf, power):
    return get_next_sys_state(
        spec=_SPEC,
        current=current,
        observed_rate=rate,
        n_threads=8,
        target=target,
        space=HARS_E.space_for(Satisfaction.OVERPERF),  # the full 9^4 box
        perf_estimator=perf,
        power_estimator=power,
    )


@given(cb=_CB, cl=_CL, ifb=_IFB, ifl=_IFL, rate=_RATE, center=_CENTER)
@settings(max_examples=25, deadline=None)
def test_cached_sweep_is_bit_identical_to_raw(cb, cl, ifb, ifl, rate, center):
    if cb == 0 and cl == 0:
        return
    current = from_indices(_SPEC, cb, cl, ifb, ifl)
    target = PerformanceTarget(0.9 * center, center, 1.1 * center)
    raw = _sweep(current, rate, target, _PERF, _POWER)
    cached = _sweep(current, rate, target, _LAYER.perf, _LAYER.power)
    assert cached.state == raw.state
    assert cached.states_explored == raw.states_explored
    # Bit-identical floats, not approximate equality.
    assert cached.best.est_rate == raw.best.est_rate
    assert cached.best.norm_perf == raw.best.norm_perf
    assert cached.best.est_power == raw.best.est_power


class TestCachedPerformanceEstimator:
    def test_hit_returns_the_same_object(self):
        cached = CachedPerformanceEstimator(PerformanceEstimator())
        state = SystemState(2, 2, 1200, 1000)
        first = cached.estimate(state, 8)
        assert cached.estimate(state, 8) is first
        assert (cached.hits, cached.misses) == (1, 1)

    def test_key_includes_thread_count(self):
        cached = CachedPerformanceEstimator(PerformanceEstimator())
        state = SystemState(2, 2, 1200, 1000)
        assert cached.estimate(state, 4) != cached.estimate(state, 8)
        assert cached.misses == 2

    def test_estimate_rate_matches_inner(self):
        inner = PerformanceEstimator()
        cached = CachedPerformanceEstimator(inner)
        a = SystemState(4, 4, 1600, 1300)
        b = SystemState(1, 2, 900, 800)
        assert cached.estimate_rate(a, b, 1.7, 8) == inner.estimate_rate(
            a, b, 1.7, 8
        )

    def test_clear_forces_recompute(self):
        cached = CachedPerformanceEstimator(PerformanceEstimator())
        state = SystemState(1, 0, 1600, 800)
        cached.estimate(state, 8)
        cached.clear()
        cached.estimate(state, 8)
        assert (cached.hits, cached.misses) == (0, 2)

    def test_attribute_passthrough(self):
        inner = PerformanceEstimator(r0=2.0)
        assert CachedPerformanceEstimator(inner).r0 == 2.0


class TestCachedPowerEstimator:
    def test_hit_skips_the_inner_model(self):
        calls = []

        class Counting:
            def estimate(self, state, perf):
                calls.append(state)
                return 1.25

        cached = CachedPowerEstimator(Counting())
        state = SystemState(2, 2, 1200, 1000)
        perf = _PERF.estimate(state, 8)
        assert cached.estimate(state, perf) == 1.25
        assert cached.estimate(state, perf) == 1.25
        assert len(calls) == 1


class TestEstimationLayerInvalidation:
    def test_power_swap_drops_stale_entries(self):
        # Recalibration produces a new PowerEstimator; estimates cached
        # against the old coefficients must not survive the swap.
        class Constant:
            def __init__(self, watts):
                self.watts = watts

            def estimate(self, state, perf):
                return self.watts

        layer = EstimationLayer(_PERF, Constant(1.0), cached=True)
        state = SystemState(2, 2, 1200, 1000)
        perf = layer.perf.estimate(state, 8)
        assert layer.power.estimate(state, perf) == 1.0
        layer.set_power_estimator(Constant(2.0))
        assert layer.power.estimate(state, perf) == 2.0

    def test_perf_swap_drops_stale_entries(self):
        layer = EstimationLayer(PerformanceEstimator(r0=1.5), _POWER)
        state = SystemState(2, 2, 1200, 1000)
        before = layer.perf.estimate(state, 8)
        layer.set_perf_estimator(PerformanceEstimator(r0=2.5))
        after = layer.perf.estimate(state, 8)
        assert after != before
        assert layer.perf.r0 == 2.5

    def test_invalidate_keeps_models_but_drops_entries(self):
        layer = EstimationLayer(_PERF, _POWER, cached=True)
        state = SystemState(1, 1, 1000, 900)
        first = layer.perf.estimate(state, 8)
        layer.invalidate()
        again = layer.perf.estimate(state, 8)
        assert again == first  # same model, recomputed
        assert layer.perf.misses == 2

    def test_uncached_layer_exposes_raw_estimators(self):
        layer = EstimationLayer(_PERF, _POWER, cached=False)
        assert layer.perf is _PERF
        assert layer.power is _POWER
        layer.invalidate()  # no-op, must not raise


class TestEstimationLayerStats:
    def test_stats_reports_current_counters(self):
        layer = EstimationLayer(PerformanceEstimator(), _POWER, cached=True)
        state = SystemState(2, 2, 1200, 1000)
        layer.perf.estimate(state, 8)
        layer.perf.estimate(state, 8)
        stats = layer.stats()
        assert stats["perf_misses"] == 1
        assert stats["perf_hits"] == 1

    def test_stats_survive_perf_estimator_swap(self):
        # Regression: online ratio learning swaps the performance model
        # every adaptation period; the swap must retire the old wrapper's
        # counters into the layer totals, not zero them.
        layer = EstimationLayer(
            PerformanceEstimator(r0=1.5), _POWER, cached=True
        )
        state = SystemState(2, 2, 1200, 1000)
        layer.perf.estimate(state, 8)
        layer.perf.estimate(state, 8)  # 1 miss, 1 hit
        layer.set_perf_estimator(PerformanceEstimator(r0=2.5))
        layer.perf.estimate(state, 8)  # fresh cache: 1 more miss
        stats = layer.stats()
        assert stats["perf_misses"] == 2
        assert stats["perf_hits"] == 1

    def test_stats_survive_power_estimator_swap(self):
        class Constant:
            def __init__(self, watts):
                self.watts = watts

            def estimate(self, state, perf):
                return self.watts

        layer = EstimationLayer(PerformanceEstimator(), Constant(1.0))
        state = SystemState(2, 2, 1200, 1000)
        perf = layer.perf.estimate(state, 8)
        layer.power.estimate(state, perf)
        layer.power.estimate(state, perf)  # 1 miss, 1 hit
        layer.set_power_estimator(Constant(2.0))
        layer.power.estimate(state, perf)
        stats = layer.stats()
        assert stats["power_misses"] == 2
        assert stats["power_hits"] == 1

    def test_uncached_layer_stats_are_zero(self):
        layer = EstimationLayer(_PERF, _POWER, cached=False)
        layer.set_perf_estimator(PerformanceEstimator())
        assert layer.stats() == {
            "perf_hits": 0,
            "perf_misses": 0,
            "power_hits": 0,
            "power_misses": 0,
            "tensor_builds": 0,
            "tensor_reuses": 0,
        }

    def test_stats_report_tensor_builds_and_reuses(self):
        # The vector planner's lookups bypass the per-state memo, so
        # stats() meters its tensor builds/reuses instead of silently
        # reporting an idle cache.
        spec = odroid_xu3()
        layer = EstimationLayer(_PERF, _POWER, cached=True)
        first = layer.tensor(spec, 8)
        again = layer.tensor(spec, 8)
        assert again is first
        stats = layer.stats()
        assert stats["tensor_builds"] == 1
        assert stats["tensor_reuses"] == 1
        # A different thread count is a different tensor.
        layer.tensor(spec, 4)
        assert layer.stats()["tensor_builds"] == 2

    def test_tensor_invalidates_on_model_swap_and_invalidate(self):
        spec = odroid_xu3()
        layer = EstimationLayer(_PERF, _POWER, cached=True)
        first = layer.tensor(spec, 8)
        layer.set_power_estimator(_POWER)
        rebuilt = layer.tensor(spec, 8)
        assert rebuilt is not first
        layer.set_perf_estimator(PerformanceEstimator())
        assert layer.tensor(spec, 8) is not rebuilt
        third = layer.tensor(spec, 8)
        layer.invalidate()
        assert layer.tensor(spec, 8) is not third
        assert layer.stats()["tensor_builds"] == 4
