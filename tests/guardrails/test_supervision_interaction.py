"""Guardrails × supervision: evicted apps release their budget share."""

import pytest

from repro.experiments.runner import RunConfig, RunShape, run
from repro.faults import FaultConfig, LifecycleEvent
from repro.guardrails import GuardrailConfig
from repro.supervision import SupervisorConfig

CAP_W = 3.25


@pytest.fixture(scope="module")
def hang_outcome():
    shapes = [
        RunShape(benchmark="swaptions", n_units=120,
                 target_fraction=0.75, seed=1),
        RunShape(benchmark="bodytrack", n_units=120,
                 target_fraction=0.75, seed=2),
    ]
    faults = FaultConfig(seed=3, lifecycle_schedule=(
        LifecycleEvent("app_hang", at_s=10.0, target="swaptions-0"),
    ))
    return run(
        "mp-hars-e",
        shapes,
        RunConfig(
            faults=faults,
            supervision=SupervisorConfig(grace_factor=3.0),
            guardrails=GuardrailConfig(power_cap_w=CAP_W),
        ),
    )


class TestShareRelease:
    def test_initial_split_covers_both_apps(self, hang_outcome):
        enforcer = hang_outcome.guardrails.enforcer
        first_time, first_shares = enforcer.share_events[0]
        board = enforcer.board_power_w
        each = (CAP_W - board) / 2
        assert first_shares == {
            "swaptions-0": pytest.approx(each),
            "bodytrack-1": pytest.approx(each),
        }

    def test_survivor_absorbs_the_released_share(self, hang_outcome):
        enforcer = hang_outcome.guardrails.enforcer
        board = enforcer.board_power_w
        _, final_shares = enforcer.share_events[-1]
        # Only the survivor remains, owning the whole cluster budget.
        assert set(final_shares) <= {"bodytrack-1"}
        absorbed = [
            shares
            for _, shares in enforcer.share_events
            if shares == {"bodytrack-1": pytest.approx(CAP_W - board)}
        ]
        assert absorbed, "survivor never absorbed the full cluster budget"

    def test_release_lands_within_one_mape_period(self, hang_outcome):
        record = hang_outcome.supervisor.ledger.record("swaptions-0")
        assert record.status.value == "evicted"
        enforcer = hang_outcome.guardrails.enforcer
        board = enforcer.board_power_w
        release_times = [
            time_s
            for time_s, shares in enforcer.share_events
            if shares == {"bodytrack-1": pytest.approx(CAP_W - board)}
        ]
        survivor = next(
            a for a in hang_outcome.metrics.apps
            if a.app_name == "bodytrack-1"
        )
        period_s = 5 / survivor.target_avg
        # The hang escalates hang → quarantine → evict; the share is
        # released at quarantine already, and in the worst case no
        # later than one MAPE period past the eviction.
        assert min(release_times) <= record.evicted_at + period_s

    def test_survivor_still_completes(self, hang_outcome):
        status = hang_outcome.supervisor.ledger.status_of("bodytrack-1")
        assert status.value == "done"
