"""Oscillation damper: thrash detection, hysteresis hold, cooldown."""

from repro.core.state import SystemState
from repro.guardrails import OscillationDamper

A = SystemState(2, 2, 1400, 1100)
B = SystemState(2, 3, 1400, 1100)
C = SystemState(4, 4, 1800, 1400)


def _always_a(first, second):
    return A


def _damper(window=4, flips=3, hold=3, states=2):
    return OscillationDamper(
        window=window, flips=flips, hold_periods=hold, states=states
    )


def _feed(damper, states, cheaper=_always_a, app="app"):
    outcomes = []
    for state in states:
        outcomes.append(damper.filter_plan(app, state, cheaper))
    return outcomes


class TestDetection:
    def test_alternating_pair_trips(self):
        damper = _damper()
        outcomes = _feed(damper, [A, B, A, B])
        assert outcomes[-1] == (A, "trip")
        assert damper.trips == 1

    def test_short_history_never_trips(self):
        damper = _damper()
        outcomes = _feed(damper, [A, B, A])
        assert all(change == "" for _, change in outcomes)
        assert damper.trips == 0

    def test_three_distinct_states_is_not_two_state_thrash(self):
        # The default damper only treats a two-state ping-pong as
        # thrash; a three-state limit cycle passes through untouched.
        damper = _damper()
        outcomes = _feed(damper, [A, B, C, A, B, C])
        assert all(change == "" for _, change in outcomes)

    def test_wider_state_budget_catches_a_three_state_cycle(self):
        damper = _damper(states=3)
        outcomes = _feed(damper, [A, B, C, A])
        assert outcomes[-1] == (A, "trip")
        assert damper.trips == 1

    def test_cheapest_of_the_cycle_is_held(self):
        # Reduction over the distinct set: the pairwise-cheaper callback
        # must see every member, in first-seen order.
        seen = []

        def cheaper(first, second):
            seen.append((first, second))
            return second

        damper = _damper(states=3)
        outcomes = _feed(damper, [B, C, A, B], cheaper=cheaper)
        assert outcomes[-1] == (A, "trip")
        assert seen == [(B, C), (C, A)]

    def test_too_few_flips_is_not_thrash(self):
        # Window [A, A, B, B]: two states but only one flip.
        damper = _damper(window=4, flips=2)
        outcomes = _feed(damper, [A, A, B, B])
        assert all(change == "" for _, change in outcomes)

    def test_steady_state_never_trips(self):
        damper = _damper()
        outcomes = _feed(damper, [A] * 10)
        assert all(change == "" for _, change in outcomes)


class TestHold:
    def test_hold_overrides_the_planner_for_k_periods(self):
        damper = _damper(hold=3)
        _feed(damper, [A, B, A, B])          # trips, holds A (period 1)
        assert damper.holding("app")
        state, change = damper.filter_plan("app", C, _always_a)
        assert (state, change) == (A, "")    # period 2: C overridden
        state, change = damper.filter_plan("app", C, _always_a)
        assert (state, change) == (A, "release")  # period 3: last held
        assert not damper.holding("app")
        # After release the planner's choice passes through again.
        state, change = damper.filter_plan("app", C, _always_a)
        assert (state, change) == (C, "")
        assert damper.held_cycles == 3

    def test_history_restarts_empty_after_a_hold(self):
        damper = _damper(window=4, flips=3, hold=2)
        _feed(damper, [A, B, A, B, C])       # trip + one held period
        assert not damper.holding("app")
        # Three more plans: window not yet full again, so no trip even
        # though they alternate.
        outcomes = _feed(damper, [A, B, A])
        assert all(change == "" for _, change in outcomes)

    def test_one_period_hold_is_released_immediately(self):
        damper = _damper(hold=1)
        outcomes = _feed(damper, [A, B, A, B])
        assert outcomes[-1] == (A, "trip")
        # holding() already False: the layer pairs the release itself.
        assert not damper.holding("app")

    def test_cheaper_of_picks_the_held_state(self):
        damper = _damper()
        outcomes = _feed(damper, [A, B, A, B], cheaper=lambda f, s: B)
        assert outcomes[-1] == (B, "trip")

    def test_apps_are_independent(self):
        damper = _damper()
        _feed(damper, [A, B, A, B], app="one")
        assert damper.holding("one")
        assert not damper.holding("two")
        state, change = damper.filter_plan("two", C, _always_a)
        assert (state, change) == (C, "")


class TestLifecycle:
    def test_forget_drops_a_hold(self):
        damper = _damper()
        _feed(damper, [A, B, A, B])
        damper.forget("app")
        assert not damper.holding("app")

    def test_reset_clears_everything_but_counters(self):
        damper = _damper()
        _feed(damper, [A, B, A, B])
        damper.reset()
        assert not damper.holding("app")
        assert damper.trips == 1             # counters survive a restart

    def test_snapshot_restore_round_trip(self):
        damper = _damper(hold=4)
        _feed(damper, [A, B, A, B])
        body = damper.snapshot()
        clone = _damper(hold=4)
        clone.restore(body)
        assert clone.trips == damper.trips
        assert clone.held_cycles == damper.held_cycles
        assert clone.holding("app")
        # The restored hold keeps overriding with the same held state.
        state, _ = clone.filter_plan("app", C, _always_a)
        assert state == A
