"""GuardrailLayer end to end: capped runs, identity, checkpointing."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig, RunShape, run
from repro.guardrails import GuardrailConfig, GuardrailLayer
from repro.sim.engine import Simulation

SHAPE = RunShape(benchmark="swaptions", n_units=300, seed=0)


def _snapshot(outcome):
    """Everything a run decides: metrics plus the full trace."""
    return (
        dataclasses.asdict(outcome.metrics),
        tuple(
            (name, outcome.trace.points(name))
            for name in sorted(outcome.trace.app_names)
        ),
    )


@pytest.fixture(scope="module")
def base_outcome():
    return run("hars-e", SHAPE)


@pytest.fixture(scope="module")
def capped_outcome(base_outcome):
    cap = 0.8 * base_outcome.metrics.avg_power_w
    return run(
        "hars-e", SHAPE, RunConfig(guardrails=GuardrailConfig(power_cap_w=cap))
    ), cap


class TestBudgetCap:
    def test_capped_run_attaches_the_layer(self, capped_outcome):
        outcome, _ = capped_outcome
        assert outcome.guardrails is not None
        assert outcome.guardrails.enforcer is not None

    def test_average_power_respects_the_cap(self, base_outcome, capped_outcome):
        outcome, cap = capped_outcome
        assert outcome.metrics.avg_power_w < base_outcome.metrics.avg_power_w
        assert outcome.metrics.avg_power_w <= cap

    def test_violations_end_within_one_adaptation_period(self, capped_outcome):
        outcome, _ = capped_outcome
        app = outcome.metrics.apps[0]
        period_s = SHAPE.adapt_every / app.target_avg
        enforcer = outcome.guardrails.enforcer
        # The acceptance bound: a sensor excursion over the cap is
        # throttled away within one adaptation period.
        assert enforcer.max_violation_streak_s <= period_s

    def test_trips_are_counted_and_announced(self, capped_outcome):
        outcome, _ = capped_outcome
        stats = outcome.guardrails.guardrail_stats()
        assert stats["budget_trips"] == outcome.guardrails.enforcer.trips
        assert stats["emergency_throttles"] >= stats["budget_trips"]

    def test_forced_cycles_shrink_the_allocation(self, capped_outcome):
        outcome, _ = capped_outcome
        # An in-window rate must not mask a violated budget: the guard
        # forces planning cycles, and the vetoed search shrinks the
        # allocation (frequency pinning alone cannot clear the cap).
        assert outcome.guardrails.forced_cycles > 0

    def test_filtered_counter_reaches_telemetry(self):
        outcome = run(
            "hars-e",
            SHAPE,
            RunConfig(
                telemetry=True,
                guardrails=GuardrailConfig(power_cap_w=2.0),
            ),
        )
        snapshot = outcome.telemetry.registry.snapshot()
        names = {entry["name"] for entry in snapshot["instruments"]}
        assert "guardrail_stats" in names
        assert "guardrail_trips_total" in names


class TestIdentity:
    def test_empty_config_is_bit_identical(self, base_outcome):
        empty = run("hars-e", SHAPE, RunConfig(guardrails=GuardrailConfig()))
        explicit_none = run("hars-e", SHAPE, RunConfig(guardrails=None))
        assert empty.guardrails is None
        assert _snapshot(empty) == _snapshot(base_outcome)
        assert _snapshot(explicit_none) == _snapshot(base_outcome)

    def test_layer_rejects_a_disabled_config(self):
        with pytest.raises(ConfigurationError):
            GuardrailLayer(GuardrailConfig())


class TestCheckpoint:
    def _layer(self):
        return GuardrailLayer(
            GuardrailConfig(
                power_cap_w=2.0,
                damper_window=4,
                watchdog_window=4,
            )
        )

    def test_round_trip_restores_every_component(self, xu3):
        layer = self._layer()
        layer.enforcer.board_power_w = 0.25
        layer.enforcer.set_live(["swaptions"], 0.0)
        layer.enforcer.observe(0.1, 3.0, 0.1)
        layer.emergency_throttles = 7
        body = layer.checkpoint(now_s=0.1)
        assert body["controller"] == "guardrails"

        sim = Simulation(xu3, tick_s=0.01)
        clone = self._layer()
        clone.enforcer.board_power_w = 0.25
        clone.restore_checkpoint(sim, body)
        assert clone.emergency_throttles == 7
        assert clone.enforcer.trips == 1
        assert clone.enforcer.throttling
        assert clone.enforcer.margin == layer.enforcer.margin

    def test_simulate_restart_without_store_is_cold(self, xu3):
        sim = Simulation(xu3, tick_s=0.01)
        layer = self._layer()
        layer.enforcer.board_power_w = 0.25
        layer.enforcer.set_live(["a"], 0.0)
        layer.enforcer.observe(0.1, 3.0, 0.1)
        restored = []
        from repro.kernel.bus import ControllerRestored

        sim.bus.subscribe(ControllerRestored, restored.append)
        layer._sim = sim
        layer.simulate_restart(sim)
        assert len(restored) == 1
        assert not restored[0].warm
        # Volatile state reset; monotonic counters survive.
        assert not layer.enforcer.throttling
        assert layer.enforcer.margin == layer.config.filter_margin
        assert layer.enforcer.trips == 1
