"""GuardrailConfig validation and the everything-off default."""

import pytest

from repro.errors import ConfigurationError
from repro.guardrails import GuardrailConfig


class TestDefaultsOff:
    def test_default_config_is_fully_disabled(self):
        cfg = GuardrailConfig()
        assert not cfg.enabled
        assert not cfg.budget_enabled
        assert not cfg.damper_enabled
        assert not cfg.watchdog_enabled

    def test_run_cap_enables_budget(self):
        cfg = GuardrailConfig(power_cap_w=3.0)
        assert cfg.budget_enabled
        assert cfg.enabled

    def test_app_caps_enable_budget(self):
        cfg = GuardrailConfig(app_power_caps=(("swaptions-0", 1.5),))
        assert cfg.budget_enabled
        assert cfg.explicit_caps() == {"swaptions-0": 1.5}

    def test_damper_window_enables_damper(self):
        assert GuardrailConfig(damper_window=6).damper_enabled

    def test_watchdog_window_enables_watchdog(self):
        assert GuardrailConfig(watchdog_window=8).watchdog_enabled

    def test_with_keeps_frozen_original(self):
        base = GuardrailConfig()
        capped = base.with_(power_cap_w=2.5)
        assert not base.enabled
        assert capped.power_cap_w == 2.5


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"power_cap_w": 0.0},
            {"power_cap_w": -1.0},
            {"app_power_caps": (("a", 0.0),)},
            {"app_power_caps": (("a", 1.0), ("a", 2.0))},
            {"app_power_caps": (("a",),)},
            {"filter_margin": 0.0},
            {"filter_margin": 2.5},
            {"power_cap_w": 2.0, "trip_margin_decay": 0.0},
            {"power_cap_w": 2.0, "trip_margin_decay": 1.5},
            {"power_cap_w": 2.0, "min_margin": 0.0},
            {"power_cap_w": 2.0, "min_margin": 0.99, "filter_margin": 0.9},
            {"power_cap_w": 2.0, "release_fraction": 0.0},
            {"power_cap_w": 2.0, "release_fraction": 1.1},
            {"damper_window": -1},
            {"damper_window": 2},
            {"damper_window": 4, "damper_flips": 1},
            {"damper_window": 4, "damper_flips": 4},
            {"damper_window": 4, "damper_hold_periods": 0},
            {"damper_window": 4, "damper_states": 1},
            {"damper_window": 4, "damper_states": 4},
            {"watchdog_window": -1},
            {"watchdog_window": 1},
            {"watchdog_window": 4, "watchdog_recover": 0.0},
            {"watchdog_window": 4, "watchdog_recover": 0.5,
             "watchdog_trip": 0.4},
        ],
    )
    def test_bad_fields_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            GuardrailConfig(**kwargs)

    def test_thermal_requires_a_budget(self):
        with pytest.raises(ConfigurationError):
            GuardrailConfig(thermal_enabled=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"thermal_tau_s": 0.0},
            {"thermal_c_per_w": -1.0},
            {"thermal_release_c": 90.0},     # above throttle_c
            {"ambient_c": 82.0},             # above release_c
            {"thermal_cap_factor": 0.0},
            {"thermal_cap_factor": 1.2},
        ],
    )
    def test_bad_thermal_fields_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            GuardrailConfig(power_cap_w=2.0, thermal_enabled=True, **kwargs)

    def test_valid_thermal_config_accepted(self):
        cfg = GuardrailConfig(power_cap_w=2.0, thermal_enabled=True)
        assert cfg.enabled
