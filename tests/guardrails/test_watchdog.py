"""Misprediction watchdog: residuals, safe-mode trip, and recovery."""

import pytest

from repro.guardrails import MispredictionWatchdog


def _watchdog(window=4, trip=0.3, recover=0.1, track_power=False):
    return MispredictionWatchdog(
        window=window,
        trip_threshold=trip,
        recover_threshold=recover,
        track_power=track_power,
    )


def _cycle(dog, est_rate, observed_rate, app="app", t=(0.0, 1.0)):
    """One predict→observe round trip (rate residual only)."""
    dog.note_prediction(app, est_rate, 1.0, t[0], 0.0)
    return dog.note_observation(app, observed_rate, t[1], 0.0)


class TestResiduals:
    def test_residual_is_signed_relative_error(self):
        dog = _watchdog()
        _cycle(dog, est_rate=2.0, observed_rate=1.5)
        assert dog.all_residuals == [pytest.approx(-0.25)]
        _cycle(dog, est_rate=2.0, observed_rate=2.5)
        assert dog.all_residuals[-1] == pytest.approx(0.25)

    def test_observation_without_prediction_is_ignored(self):
        dog = _watchdog()
        assert dog.note_observation("app", 1.0, 1.0, 0.0) == ""
        assert dog.all_residuals == []

    def test_prediction_is_consumed_once(self):
        dog = _watchdog()
        _cycle(dog, 2.0, 1.0)
        assert dog.note_observation("app", 1.0, 2.0, 0.0) == ""
        assert len(dog.all_residuals) == 1

    def test_newer_prediction_overwrites_pending(self):
        dog = _watchdog()
        dog.note_prediction("app", 2.0, 1.0, 0.0, 0.0)
        dog.note_prediction("app", 4.0, 1.0, 0.5, 0.0)
        dog.note_observation("app", 2.0, 1.0, 0.0)
        # Residual measured against the latest applied estimate (4.0).
        assert dog.all_residuals == [pytest.approx(-0.5)]

    def test_power_residual_from_integrated_energy(self):
        dog = _watchdog(track_power=True)
        # 1 W predicted; 3 J over 2 s observed → +0.5 power residual
        # recorded after the (exact, zero) rate residual.
        dog.note_prediction("app", 2.0, 1.0, 0.0, 0.0)
        dog.note_observation("app", 2.0, 2.0, 3.0)
        assert dog.all_residuals == [
            pytest.approx(0.0, abs=1e-12),
            pytest.approx(0.5),
        ]

    def test_power_residual_skipped_when_untracked(self):
        dog = _watchdog(track_power=False)
        dog.note_prediction("app", 2.0, 1.0, 0.0, 0.0)
        dog.note_observation("app", 2.0, 2.0, 3.0)
        # Only the rate residual lands; the energy channel is ignored.
        assert dog.all_residuals == [pytest.approx(0.0, abs=1e-12)]


class TestSafeMode:
    def test_trips_after_a_full_bad_window(self):
        dog = _watchdog(window=4, trip=0.3)
        changes = [_cycle(dog, 2.0, 1.0) for _ in range(4)]
        assert changes == ["", "", "", "trip"]
        assert dog.in_safe_mode("app")
        assert dog.trips == 1

    def test_partial_window_never_judges(self):
        dog = _watchdog(window=4)
        changes = [_cycle(dog, 2.0, 1.0) for _ in range(3)]
        assert changes == ["", "", ""]
        assert not dog.in_safe_mode("app")

    def test_accurate_estimates_never_trip(self):
        dog = _watchdog(window=4, trip=0.3)
        for _ in range(10):
            assert _cycle(dog, 2.0, 2.05) == ""
        assert not dog.in_safe_mode("app")

    def test_recovery_needs_the_lower_threshold(self):
        dog = _watchdog(window=2, trip=0.3, recover=0.1)
        for _ in range(2):
            _cycle(dog, 2.0, 1.0)
        assert dog.in_safe_mode("app")
        # 0.2 mean residual: below trip but above recover — stays safe.
        for _ in range(4):
            assert _cycle(dog, 2.0, 2.4) == ""
        assert dog.in_safe_mode("app")
        # Two accurate cycles flush the window below recover.
        changes = [_cycle(dog, 2.0, 2.02) for _ in range(2)]
        assert changes[-1] == "release"
        assert not dog.in_safe_mode("app")

    def test_safe_cycles_counted(self):
        dog = _watchdog()
        dog.note_safe_cycle()
        dog.note_safe_cycle()
        assert dog.safe_cycles == 2

    def test_apps_are_independent(self):
        dog = _watchdog(window=2)
        for _ in range(2):
            _cycle(dog, 2.0, 1.0, app="bad")
        assert dog.in_safe_mode("bad")
        assert not dog.in_safe_mode("good")


class TestLifecycle:
    def test_forget_drops_safe_mode(self):
        dog = _watchdog(window=2)
        for _ in range(2):
            _cycle(dog, 2.0, 1.0)
        dog.forget("app")
        assert not dog.in_safe_mode("app")

    def test_reset_clears_windows_but_keeps_counters(self):
        dog = _watchdog(window=2)
        for _ in range(2):
            _cycle(dog, 2.0, 1.0)
        dog.reset()
        assert not dog.in_safe_mode("app")
        assert dog.trips == 1

    def test_snapshot_restore_round_trip(self):
        dog = _watchdog(window=2)
        for _ in range(2):
            _cycle(dog, 2.0, 1.0)
        body = dog.snapshot()
        clone = _watchdog(window=2)
        clone.restore(body)
        assert clone.trips == dog.trips
        assert clone.in_safe_mode("app")
        # The restored window still carries the residuals: one accurate
        # pair of cycles is enough to release.
        changes = [_cycle(clone, 2.0, 2.0) for _ in range(2)]
        assert "release" in changes
