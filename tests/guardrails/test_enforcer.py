"""BudgetEnforcer unit behaviour: shares, margin, throttle hysteresis."""

import pytest

from repro.guardrails import BudgetEnforcer, GuardrailConfig

BOARD_W = 0.25


def _enforcer(**config_kwargs):
    enforcer = BudgetEnforcer(GuardrailConfig(**config_kwargs))
    enforcer.board_power_w = BOARD_W
    return enforcer


class TestShares:
    def test_run_cap_splits_equally_after_board(self):
        enforcer = _enforcer(power_cap_w=3.25)
        enforcer.set_live(["a", "b"], 0.0)
        # Shares are cluster-basis: the board constant comes off first.
        assert enforcer.shares == {"a": pytest.approx(1.5),
                                   "b": pytest.approx(1.5)}

    def test_explicit_caps_take_precedence(self):
        enforcer = _enforcer(
            power_cap_w=3.25, app_power_caps=(("a", 2.0),)
        )
        enforcer.set_live(["a", "b"], 0.0)
        assert enforcer.shares["a"] == pytest.approx(2.0)
        assert enforcer.shares["b"] == pytest.approx(1.0)

    def test_release_gives_the_share_to_survivors(self):
        enforcer = _enforcer(power_cap_w=3.25)
        enforcer.set_live(["a", "b"], 0.0)
        assert enforcer.release("a", 5.0)
        assert enforcer.shares == {"b": pytest.approx(3.0)}
        # The audit trail records both recomputations.
        assert [t for t, _ in enforcer.share_events] == [0.0, 5.0]
        assert enforcer.share_events[-1][1] == {"b": pytest.approx(3.0)}

    def test_release_of_unknown_app_is_a_no_op(self):
        enforcer = _enforcer(power_cap_w=3.25)
        enforcer.set_live(["a"], 0.0)
        assert not enforcer.release("ghost", 1.0)
        assert len(enforcer.share_events) == 1

    def test_admit_restores_the_split(self):
        enforcer = _enforcer(power_cap_w=3.25)
        enforcer.set_live(["a", "b"], 0.0)
        enforcer.release("a", 1.0)
        assert enforcer.admit("a", 2.0)
        assert enforcer.shares["a"] == pytest.approx(1.5)
        assert not enforcer.admit("a", 3.0)  # already live

    def test_no_run_cap_leaves_implicit_apps_uncapped(self):
        enforcer = _enforcer(app_power_caps=(("a", 1.0),))
        enforcer.set_live(["a", "b"], 0.0)
        assert enforcer.shares["a"] == pytest.approx(1.0)
        assert enforcer.shares["b"] is None

    def test_oversubscribed_explicit_caps_leave_no_remainder(self):
        enforcer = _enforcer(
            power_cap_w=2.0, app_power_caps=(("a", 3.0),)
        )
        enforcer.set_live(["a", "b"], 0.0)
        # Nothing (clamped at zero) remains for b: uncapped by share,
        # the run-wide sensor check still protects the budget.
        assert enforcer.shares["b"] is None


class TestRunCap:
    def test_run_cap_is_the_configured_cap(self):
        enforcer = _enforcer(power_cap_w=3.0)
        enforcer.set_live(["a"], 0.0)
        assert enforcer.run_cap_w() == pytest.approx(3.0)

    def test_all_explicit_caps_sum_plus_board(self):
        enforcer = _enforcer(app_power_caps=(("a", 1.0), ("b", 1.5)))
        enforcer.set_live(["a", "b"], 0.0)
        # Per-app caps are cluster-basis; the sensor check is total.
        assert enforcer.run_cap_w() == pytest.approx(2.5 + BOARD_W)

    def test_partial_explicit_coverage_gives_no_run_cap(self):
        enforcer = _enforcer(app_power_caps=(("a", 1.0),))
        enforcer.set_live(["a", "b"], 0.0)
        assert enforcer.run_cap_w() is None
        assert enforcer.effective_cap_w() is None

    def test_veto_cap_applies_the_filter_margin(self):
        enforcer = _enforcer(power_cap_w=3.25, filter_margin=0.9)
        enforcer.set_live(["a", "b"], 0.0)
        assert enforcer.veto_cap_w("a") == pytest.approx(1.5 * 0.9)
        assert enforcer.veto_cap_w("ghost") is None


class TestObserve:
    def test_violation_trips_once_and_decays_margin(self):
        enforcer = _enforcer(
            power_cap_w=2.0, filter_margin=0.9, trip_margin_decay=0.5
        )
        enforcer.set_live(["a"], 0.0)
        transitions, violating = enforcer.observe(0.1, 3.0, 0.1)
        assert violating
        assert [(g, c) for g, c, _ in transitions] == [("budget", "trip")]
        assert enforcer.trips == 1
        assert enforcer.margin == pytest.approx(0.45)
        # A second violating tick keeps throttling without re-tripping.
        transitions, violating = enforcer.observe(0.1, 3.0, 0.2)
        assert violating and transitions == []
        assert enforcer.trips == 1

    def test_margin_never_decays_below_the_floor(self):
        enforcer = _enforcer(
            power_cap_w=2.0,
            filter_margin=0.9,
            trip_margin_decay=0.1,
            min_margin=0.5,
        )
        enforcer.set_live(["a"], 0.0)
        enforcer.observe(0.1, 3.0, 0.1)
        assert enforcer.margin == pytest.approx(0.5)

    def test_release_needs_the_hysteresis_fraction(self):
        enforcer = _enforcer(power_cap_w=2.0, release_fraction=0.9)
        enforcer.set_live(["a"], 0.0)
        enforcer.observe(0.1, 3.0, 0.1)
        assert enforcer.throttling
        # Under the cap but above 0.9 × cap: no release yet.
        transitions, violating = enforcer.observe(0.1, 1.9, 0.2)
        assert not violating and transitions == []
        assert enforcer.throttling
        transitions, violating = enforcer.observe(0.1, 1.7, 0.3)
        assert [(g, c) for g, c, _ in transitions] == [("budget", "release")]
        assert not enforcer.throttling
        assert enforcer.throttled_s == pytest.approx(0.2)

    def test_streaks_are_tracked_in_seconds(self):
        enforcer = _enforcer(power_cap_w=2.0)
        enforcer.set_live(["a"], 0.0)
        for i in range(3):
            enforcer.observe(0.1, 3.0, 0.1 * (i + 1))
        enforcer.observe(0.1, 1.0, 0.4)   # streak broken
        enforcer.observe(0.1, 3.0, 0.5)
        assert enforcer.violation_ticks == 4
        assert enforcer.max_violation_streak_s == pytest.approx(0.3)

    def test_uncapped_run_never_violates(self):
        enforcer = _enforcer()
        enforcer.set_live(["a"], 0.0)
        transitions, violating = enforcer.observe(0.1, 100.0, 0.1)
        assert transitions == [] and not violating


class TestThermalTightening:
    def _hot_enforcer(self):
        enforcer = _enforcer(
            power_cap_w=2.0,
            thermal_enabled=True,
            thermal_tau_s=1.0,
            thermal_c_per_w=30.0,
            ambient_c=45.0,
            thermal_throttle_c=85.0,
            thermal_release_c=80.0,
            thermal_cap_factor=0.8,
        )
        enforcer.set_live(["a"], 0.0)
        return enforcer

    def test_hot_model_tightens_cap_and_shares(self):
        enforcer = self._hot_enforcer()
        # Sustained 2 W → steady state 105 °C with tau 1 s: a few ticks
        # trip the thermal regime.
        transitions = []
        for i in range(40):
            got, _ = enforcer.observe(0.25, 2.0, 0.25 * (i + 1))
            transitions.extend(got)
        assert ("thermal", "trip") in [(g, c) for g, c, _ in transitions]
        assert enforcer.thermal_trips == 1
        assert enforcer.effective_cap_w() == pytest.approx(2.0 * 0.8)
        # The per-app veto bound tightens by the same factor (the share
        # is the whole cluster budget; the margin may have decayed from
        # the budget trips the tightened cap caused).
        share = 2.0 - BOARD_W
        assert enforcer.veto_cap_w("a") == pytest.approx(
            share * enforcer.margin * 0.8
        )

    def test_cooling_releases_the_tightened_cap(self):
        enforcer = self._hot_enforcer()
        for i in range(40):
            enforcer.observe(0.25, 2.0, 0.25 * (i + 1))
        transitions = []
        for i in range(60):
            got, _ = enforcer.observe(0.25, 0.2, 10.0 + 0.25 * (i + 1))
            transitions.extend(got)
        assert ("thermal", "release") in [(g, c) for g, c, _ in transitions]
        assert enforcer.effective_cap_w() == pytest.approx(2.0)


class TestCheckpoint:
    def test_snapshot_restore_round_trip(self):
        enforcer = _enforcer(power_cap_w=2.0, trip_margin_decay=0.5)
        enforcer.set_live(["a", "b"], 0.0)
        enforcer.observe(0.1, 3.0, 0.1)
        body = enforcer.snapshot()
        clone = _enforcer(power_cap_w=2.0, trip_margin_decay=0.5)
        clone.restore(body, now_s=1.0)
        assert clone.margin == enforcer.margin
        assert clone.throttling
        assert clone.trips == 1
        assert clone.violation_ticks == 1
        assert clone.shares == enforcer.shares

    def test_reset_restores_volatile_state_only(self):
        enforcer = _enforcer(power_cap_w=2.0, trip_margin_decay=0.5)
        enforcer.set_live(["a", "b"], 0.0)
        enforcer.observe(0.1, 3.0, 0.1)
        enforcer.reset(1.0, ["b"])
        assert enforcer.margin == enforcer.config.filter_margin
        assert not enforcer.throttling
        assert enforcer.trips == 1            # counters survive
        assert set(enforcer.shares) == {"b"}
