"""First-order thermal model: RC dynamics and trip/release hysteresis."""

import math

import pytest

from repro.guardrails import ThermalModel


def _model(**overrides):
    kwargs = dict(
        ambient_c=45.0,
        tau_s=10.0,
        c_per_w=5.0,
        throttle_c=85.0,
        release_c=80.0,
    )
    kwargs.update(overrides)
    return ThermalModel(**kwargs)


class TestDynamics:
    def test_relaxes_toward_steady_state(self):
        model = _model()
        # Sustained 10 W: steady state 45 + 5*10 = 95 °C, approached
        # monotonically from ambient without ever overshooting.
        previous = model.temp_c
        for _ in range(100):
            model.update(1.0, 10.0)
            assert previous <= model.temp_c <= 95.0
            previous = model.temp_c
        assert model.temp_c == pytest.approx(95.0, abs=0.01)

    def test_exact_exponential_step(self):
        # One 2 s step equals two 1 s steps — the exact solution is
        # step-size invariant (an Euler integrator is not).
        one_step, two_steps = _model(), _model()
        one_step.update(2.0, 8.0)
        two_steps.update(1.0, 8.0)
        two_steps.update(1.0, 8.0)
        assert math.isclose(one_step.temp_c, two_steps.temp_c)

    def test_zero_dt_is_a_no_op(self):
        model = _model()
        assert model.update(0.0, 50.0) == ""
        assert model.temp_c == model.ambient_c

    def test_peak_tracks_maximum(self):
        model = _model()
        for _ in range(50):
            model.update(1.0, 10.0)
        hot_peak = model.peak_c
        for _ in range(50):
            model.update(1.0, 0.0)
        assert model.temp_c < hot_peak
        assert model.peak_c == hot_peak


class TestHysteresis:
    def test_trip_then_release(self):
        model = _model()
        changes = []
        for _ in range(100):
            change = model.update(1.0, 10.0)
            if change:
                changes.append(change)
        assert changes == ["trip"]
        assert model.hot
        for _ in range(100):
            change = model.update(1.0, 0.0)
            if change:
                changes.append(change)
        assert changes == ["trip", "release"]
        assert not model.hot

    def test_no_chatter_between_thresholds(self):
        model = _model()
        model.restore(temp_c=86.0, hot=True, peak_c=86.0)
        # 7.4 W holds steady state at 82 °C — between release (80) and
        # throttle (85): the model cools toward it but never releases.
        for _ in range(200):
            assert model.update(1.0, 7.4) == ""
        assert model.hot

    def test_reset_returns_to_ambient(self):
        model = _model()
        for _ in range(100):
            model.update(1.0, 10.0)
        model.reset()
        assert model.temp_c == model.ambient_c
        assert not model.hot
        assert model.peak_c == model.ambient_c
