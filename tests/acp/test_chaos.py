"""Control-plane resilience under seeded wire chaos.

Three layers of guarantees, in escalating order of violence:

* **SeqWindow / RetryPolicy units** — the dedup and backoff primitives
  behave per their contracts in isolation;
* **loopback chaos** — with drop/dup/reorder/corrupt/delay/disconnect
  injected at seeded rates, every RPC still terminates in a typed
  result or :class:`AcpError`, commands apply exactly once
  (``policy_swaps_total`` counts distinct swap seqs, not deliveries),
  and the final outcome is *bit-identical* to the clean run — chaos at
  the wire never perturbs the physics;
* **daemon fuzz** — corrupted and truncated bytes over the real Unix
  socket and HTTP transports always produce typed error frames, never
  a crashed connection thread, a poisoned next session, or a hang.
"""

import json
import re
import socket

import pytest

from repro.errors import ConfigurationError
from repro.acp import wire
from repro.acp.chaos import ACP_FAULT_KINDS, AcpFaultConfig, FaultyTransport
from repro.acp.client import (
    AcpClient,
    AcpError,
    AcpTransportError,
    RetryPolicy,
)
from repro.acp.server import AcpServer
from repro.acp.transport import AcpDaemon
from repro.experiments.runner import RunConfig, RunShape

from tests.acp.test_loopback_identity import assert_identical


# -- units --------------------------------------------------------------------


class TestSeqWindow:
    def frames(self, tag):
        return [wire.make_frame("swap-ack", "s", 99, {"tag": tag})]

    def test_new_then_duplicate_replays(self):
        window = wire.SeqWindow()
        verdict, cached = window.admit(1, "swap")
        assert (verdict, cached) == (wire.SEQ_NEW, None)
        response = self.frames("first")
        window.record(1, "swap", response)
        verdict, cached = window.admit(1, "swap")
        assert verdict == wire.SEQ_DUPLICATE
        assert cached == response

    def test_pending_while_in_flight(self):
        window = wire.SeqWindow()
        window.admit(1, "run")
        verdict, _ = window.admit(1, "run")
        assert verdict == wire.SEQ_PENDING

    def test_stale_behind_window(self):
        window = wire.SeqWindow()
        window.admit(5, "run")
        window.record(5, "run", self.frames("x"))
        verdict, _ = window.admit(3, "run")
        assert verdict == wire.SEQ_STALE

    def test_type_mismatch_refused(self):
        window = wire.SeqWindow()
        window.admit(1, "swap")
        window.record(1, "swap", self.frames("x"))
        verdict, _ = window.admit(1, "detach")
        assert verdict == wire.SEQ_MISMATCH

    def test_cache_eviction_turns_duplicate_into_stale(self):
        window = wire.SeqWindow(cache_limit=2)
        for seq in (1, 2, 3):
            window.admit(seq, "run")
            window.record(seq, "run", self.frames(seq))
        assert window.admit(1, "run")[0] == wire.SEQ_STALE
        assert window.admit(3, "run")[0] == wire.SEQ_DUPLICATE

    def test_error_responses_replay_too(self):
        window = wire.SeqWindow()
        window.admit(1, "swap")
        refusal = [wire.error_frame("s", 1, "no such policy")]
        window.record(1, "swap", refusal)
        verdict, cached = window.admit(1, "swap")
        assert verdict == wire.SEQ_DUPLICATE
        assert cached == refusal


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.3)
        assert policy.delay_s(9) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)


class TestFaultConfigValidation:
    def test_rates_bounded(self):
        with pytest.raises(ConfigurationError):
            AcpFaultConfig(drop_rate=1.5)
        with pytest.raises(ConfigurationError):
            AcpFaultConfig(corrupt_rate=-0.1)
        with pytest.raises(ConfigurationError):
            AcpFaultConfig(delay_s=-1.0)

    def test_enabled(self):
        assert not AcpFaultConfig().enabled
        assert not AcpFaultConfig(kill_times_s=(2.0,)).enabled  # not in-wire
        assert AcpFaultConfig(dup_rate=0.01).enabled


class _RecordingTransport:
    """Counts deliveries and answers every line with a canned frame."""

    def __init__(self):
        self.delivered = []
        self.torn = []

    def exchange(self, line, timeout_s):
        self.delivered.append(line)
        return [wire.encode_frame(wire.make_frame("welcome", "", 1, {}))]

    def send_torn(self, prefix, timeout_s):
        self.torn.append(prefix)


class TestFaultyTransportDeterminism:
    CONFIG = AcpFaultConfig(
        seed=7,
        drop_rate=0.2,
        dup_rate=0.2,
        reorder_rate=0.2,
        corrupt_rate=0.2,
        disconnect_rate=0.1,
    )

    def drive(self):
        inner = _RecordingTransport()
        faulty = FaultyTransport(inner, self.CONFIG)
        for seq in range(1, 40):
            line = wire.encode_frame(
                wire.make_frame("run", "sess-a", seq, {"seconds": 1.0})
            )
            try:
                faulty.exchange(line, timeout_s=5.0)
            except AcpTransportError:
                pass
        return faulty, inner

    def test_same_seed_same_timeline(self):
        first, inner_a = self.drive()
        second, inner_b = self.drive()
        assert first.injected == second.injected
        assert inner_a.delivered == inner_b.delivered
        assert inner_a.torn == inner_b.torn
        assert sum(first.injected.values()) > 0

    def test_disabled_config_is_transparent(self):
        inner = _RecordingTransport()
        faulty = FaultyTransport(inner, AcpFaultConfig())
        line = wire.encode_frame(wire.make_frame("hello", "", 1, {}))
        faulty.exchange(line, timeout_s=5.0)
        assert inner.delivered == [line]
        assert all(count == 0 for count in faulty.injected.values())


# -- loopback chaos -----------------------------------------------------------

SHAPE = RunShape(benchmark="swaptions", n_units=60)
CHAOS = AcpFaultConfig(
    seed=11,
    drop_rate=0.12,
    dup_rate=0.15,
    reorder_rate=0.10,
    corrupt_rate=0.25,
    delay_rate=0.05,
    delay_s=0.001,
    disconnect_rate=0.08,
)
RETRY = RetryPolicy(max_attempts=10, backoff_s=0.001, max_backoff_s=0.01)


def journey(client, session_id):
    """A fixed control journey: attach, step, swap, step, finish."""
    handle = client.attach(
        "hars-ei",
        SHAPE,
        RunConfig(telemetry=True, checkpoint=2.0),
        session_id=session_id,
    )
    for _ in range(6):
        handle.advance(2.0)
    handle.swap_policy("hars-i")
    handle.checkpoint()
    for _ in range(4):
        handle.advance(2.0)
    outcome = handle.result()
    handle.detach()
    return outcome


class TestZeroFaultIdentity:
    def test_disabled_faults_bit_identical_to_plain_loopback(self):
        plain = journey(AcpClient(server=AcpServer(threaded=False)), "ref")
        shimmed = AcpClient(
            server=AcpServer(threaded=False), faults=AcpFaultConfig()
        )
        assert_identical(plain, journey(shimmed, "ref"))
        assert shimmed.stats["retries"] == 0


class TestFullChaosLoopback:
    def test_chaotic_journey_is_bit_identical_and_exactly_once(self):
        plain = journey(AcpClient(server=AcpServer(threaded=False)), "ref")

        server = AcpServer(threaded=False)
        client = AcpClient(server=server, faults=CHAOS, retry=RETRY)
        chaotic = journey(client, "ref")

        assert_identical(plain, chaotic)
        shim = client._transport
        assert isinstance(shim, FaultyTransport)
        # The drill is only meaningful if the wire actually misbehaved.
        for kind in ("drop", "dup", "corrupt"):
            assert shim.injected[kind] > 0, shim.injected
        assert client.stats["retries"] > 0
        assert server.dedup_hits > 0
        assert server.retries_seen > 0
        assert server.frames_corrupt > 0

    def test_policy_swaps_counted_once_under_full_duplication(self):
        """Every frame delivered twice; the swap still applies once."""
        server = AcpServer(threaded=False)
        client = AcpClient(
            server=server,
            faults=AcpFaultConfig(seed=3, dup_rate=1.0),
            retry=RETRY,
        )
        handle = client.attach(
            "hars-ei",
            SHAPE,
            RunConfig(telemetry=True),
            session_id="dup-everything",
        )
        handle.advance(4.0)
        handle.swap_policy("hars-i")
        handle.advance(4.0)
        swaps = [
            float(m.group(1))
            for m in re.finditer(
                r"policy_swaps_total\{[^}]*\} (\S+)", server.metrics_text()
            )
        ]
        assert sum(swaps) == 1.0
        assert server.dedup_hits > 0
        text = server.metrics_text()
        assert re.search(r"acp_dedup_hits_total \d", text)
        assert re.search(r"acp_retries_total \d", text)

    def test_every_rpc_terminates_typed_even_when_retries_exhaust(self):
        """One attempt + a lossy wire: the failure is a typed AcpError,
        never a hang or an unhandled exception."""
        client = AcpClient(
            server=AcpServer(threaded=False),
            faults=AcpFaultConfig(seed=5, drop_rate=1.0),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        with pytest.raises(AcpError) as excinfo:
            client.hello()
        assert excinfo.value.code == "transport"


class TestStaleAndMismatchedSeqs:
    def attach(self, server):
        client = AcpClient(server=server)
        client.attach(
            "hars-ei", SHAPE, RunConfig(), session_id="seqs"
        )
        return client

    def test_stale_seq_gets_typed_error(self):
        server = AcpServer(threaded=False)
        self.attach(server)
        high = wire.make_frame("run", "seqs", 50, {"seconds": 0.5})
        server.handle_frame(high)
        stale = wire.make_frame("run", "seqs", 7, {"seconds": 0.5})
        [response] = server.handle_frame(stale)
        assert response.type == "error"
        assert response.payload["code"] == wire.ERR_STALE_SEQ

    def test_reused_seq_with_new_type_is_refused_not_replayed(self):
        server = AcpServer(threaded=False)
        self.attach(server)
        server.handle_frame(wire.make_frame("run", "seqs", 9, {"seconds": 0.5}))
        [response] = server.handle_frame(
            wire.make_frame("detach", "seqs", 9, {})
        )
        assert response.type == "error"
        assert response.payload["code"] == wire.ERR_STALE_SEQ

    def test_duplicate_advance_does_not_advance_twice(self):
        server = AcpServer(threaded=False)
        self.attach(server)
        frame = wire.make_frame("run", "seqs", 12, {"seconds": 2.0})
        [first] = server.handle_frame(frame)
        [replay] = server.handle_frame(frame)
        assert replay.payload["time_s"] == first.payload["time_s"]
        assert server.dedup_hits == 1

    def test_duplicate_checkpoint_replays_same_snapshot(self):
        server = AcpServer(threaded=False)
        client = AcpClient(server=server)
        client.attach(
            "hars-ei",
            SHAPE,
            RunConfig(checkpoint=2.0),
            session_id="seqs",
        )
        server.handle_frame(wire.make_frame("run", "seqs", 30, {"seconds": 3.0}))
        frame = wire.make_frame("checkpoint", "seqs", 31, {})
        [first] = server.handle_frame(frame)
        [replay] = server.handle_frame(frame)
        assert replay.payload == first.payload


class TestClientRetry:
    class Flaky:
        def __init__(self, inner, failures):
            self.inner = inner
            self.failures = failures
            self.calls = 0

        def exchange(self, line, timeout_s):
            self.calls += 1
            if self.failures > 0:
                self.failures -= 1
                raise OSError("injected connection reset")
            return self.inner.exchange(line, timeout_s)

    def test_transient_failures_recovered_within_policy(self):
        client = AcpClient(
            server=AcpServer(threaded=False),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.0),
        )
        client._transport = self.Flaky(client._transport, failures=2)
        assert client.hello()["server"] == "hars-repro-acp"
        assert client.stats["retries"] == 2

    def test_exhausted_attempts_raise_typed_transport_error(self):
        client = AcpClient(
            server=AcpServer(threaded=False),
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        client._transport = self.Flaky(client._transport, failures=99)
        with pytest.raises(AcpError) as excinfo:
            client.hello()
        assert excinfo.value.code == "transport"
        assert client._transport.calls == 3

    def test_result_deadline_spans_attempts(self):
        """result(timeout_s) is one wall-clock budget, not per-attempt."""
        import time as _time

        client = AcpClient(
            server=AcpServer(threaded=False),
            retry=RetryPolicy(max_attempts=1000, backoff_s=0.02),
        )
        handle = client.session("ghost")
        client._transport = self.Flaky(client._transport, failures=10**6)
        start = _time.monotonic()
        with pytest.raises(AcpError) as excinfo:
            handle.result(timeout_s=0.3)
        elapsed = _time.monotonic() - start
        assert excinfo.value.code == "deadline"
        assert elapsed < 5.0


# -- daemon fuzz --------------------------------------------------------------


@pytest.fixture()
def daemon(tmp_path):
    d = AcpDaemon(
        socket_path=str(tmp_path / "acp.sock"),
        http_port=0,
        state_dir=str(tmp_path / "state"),
    )
    d.start()
    yield d
    d.stop()


def raw_unix(path, data, timeout=30.0):
    """Send raw bytes, return the raw response text."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks).decode("utf-8", "replace")


def scrape_counter(daemon, name):
    text = AcpClient(f"unix://{daemon.socket_path}").metrics_text()
    match = re.search(rf"^{name} (\S+)$", text, re.MULTILINE)
    assert match, f"{name} missing from /metrics"
    return float(match.group(1))


class TestTornLineRegression:
    def test_partial_trailing_line_is_discarded_not_dispatched(self, daemon):
        """A client dying mid-write must not crash the connection
        thread, poison the next session, or half-apply a frame."""
        valid = wire.encode_frame(
            wire.make_frame("hello", "", 1, {})
        )
        response = raw_unix(daemon.socket_path, valid[: len(valid) // 2].encode())
        data = json.loads(response.splitlines()[0])
        assert data["type"] == "error"
        assert data["payload"]["code"] == wire.ERR_TORN_LINE
        assert scrape_counter(daemon, "acp_frames_corrupt_total") >= 1.0
        # The daemon is unpoisoned: a fresh client attaches and runs.
        client = AcpClient(f"unix://{daemon.socket_path}")
        handle = client.attach("hars-ei", SHAPE, RunConfig())
        assert handle.run()["state"] == "running"
        handle.result(timeout_s=120)
        handle.detach()

    def test_non_utf8_bytes_are_contained(self, daemon):
        response = raw_unix(daemon.socket_path, b"\xff\xfe\x00garbage\n")
        data = json.loads(response.splitlines()[0])
        assert data["type"] == "error"
        assert data["payload"]["code"] == wire.ERR_BAD_FRAME


class TestTransportFuzz:
    def corrupted_lines(self, count=40):
        import random

        rng = random.Random("acp-fuzz")
        base = wire.encode_frame(
            wire.make_frame("run", "nope", 3, {"seconds": 1.0})
        )
        for _ in range(count):
            line = list(base)
            for _ in range(rng.randrange(1, 4)):
                line[rng.randrange(len(line))] = chr(33 + rng.randrange(90))
            yield "".join(line)

    def test_unix_fuzz_always_typed_error_frames(self, daemon):
        for line in self.corrupted_lines():
            response = raw_unix(
                daemon.socket_path, (line + "\n").encode("utf-8", "replace")
            )
            for out in response.splitlines():
                data = json.loads(out)
                assert isinstance(data.get("type"), str)
        # Still alive, still serving.
        assert (
            AcpClient(f"unix://{daemon.socket_path}").hello()["server"]
            == "hars-repro-acp"
        )

    def test_unix_truncation_fuzz(self, daemon):
        import random

        rng = random.Random("acp-truncate")
        base = wire.encode_frame(
            wire.make_frame("sessions", "", 4, {})
        )
        for _ in range(15):
            cut = rng.randrange(1, len(base))
            response = raw_unix(daemon.socket_path, base[:cut].encode())
            data = json.loads(response.splitlines()[0])
            assert data["type"] == "error"
            assert data["payload"]["code"] == wire.ERR_TORN_LINE
        assert AcpClient(f"unix://{daemon.socket_path}").sessions()[
            "sessions"
        ] == []

    def test_http_fuzz_always_typed_error_frames(self, daemon):
        import urllib.request

        base = f"http://127.0.0.1:{daemon.http_port}"
        for line in self.corrupted_lines(count=15):
            request = urllib.request.Request(
                base + "/v1/frames",
                data=(line + "\n").encode("utf-8", "replace"),
                method="POST",
            )
            body = (
                urllib.request.urlopen(request, timeout=30).read().decode()
            )
            for out in body.splitlines():
                data = json.loads(out)
                assert isinstance(data.get("type"), str)
        assert AcpClient(base).hello()["server"] == "hars-repro-acp"

    def test_http_bad_content_length_is_400(self, daemon):
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.http_port, timeout=30
        )
        try:
            conn.putrequest("POST", "/v1/frames")
            conn.putheader("Content-Length", "not-a-number")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_chaotic_client_against_real_daemon(self, daemon):
        """The seeded shim over a real Unix socket: the run completes
        and every fault terminated typed (no hang = this test ends)."""
        client = AcpClient(
            f"unix://{daemon.socket_path}",
            faults=AcpFaultConfig(
                seed=23,
                drop_rate=0.1,
                dup_rate=0.1,
                corrupt_rate=0.1,
                disconnect_rate=0.05,
            ),
            retry=RetryPolicy(max_attempts=10, backoff_s=0.001),
        )
        handle = client.attach(
            "hars-ei", SHAPE, RunConfig(), session_id="chaotic-unix"
        )
        handle.run()
        outcome = handle.result(timeout_s=120)
        assert outcome.metrics.apps[0].heartbeats > 0
        handle.detach()
        assert set(ACP_FAULT_KINDS) == set(
            client._transport.injected
        )
