"""Daemon transports: Unix-socket JSONL and HTTP, threaded sessions.

These exercise the real process-boundary path — sockets, background
driver threads, client disconnects — so they assert liveness and
containment rather than bit-level values (the deterministic loopback
suite owns those).
"""

import json
import urllib.request

import pytest

from repro.acp.client import AcpClient, AcpError
from repro.acp.transport import AcpDaemon
from repro.experiments.runner import RunConfig, RunShape


@pytest.fixture()
def daemon(tmp_path):
    d = AcpDaemon(
        socket_path=str(tmp_path / "acp.sock"),
        http_port=0,
        state_dir=str(tmp_path / "state"),
    )
    d.start()
    yield d
    d.stop()


def attach_two_apps(client, n_units=300):
    shapes = [
        RunShape(benchmark="swaptions", n_units=n_units),
        RunShape(benchmark="bodytrack", n_units=n_units),
    ]
    return client.attach(
        "mp-hars-ei", shapes, RunConfig(telemetry=True, checkpoint=2.0)
    )


class TestUnixSocket:
    def test_attach_run_swap_result(self, daemon):
        client = AcpClient(f"unix://{daemon.socket_path}")
        assert client.hello()["server"] == "hars-repro-acp"
        handle = attach_two_apps(client)
        assert handle.run()["state"] == "running"
        swap = handle.swap_policy("hars-i")
        assert swap["policy"] == "HARS-I"
        outcome = handle.result(timeout_s=120)
        assert sorted(a.app_name for a in outcome.metrics.apps) == [
            "bodytrack-1",
            "swaptions-0",
        ]
        events = handle.events()
        assert any(e.type == "policy-swapped" for e in events)
        handle.detach()

    def test_daemon_survives_client_death(self, daemon):
        """A vanished client is a closed socket, not a lost session."""
        client = AcpClient(f"unix://{daemon.socket_path}")
        handle = attach_two_apps(client)
        handle.run()
        session_id = handle.session_id
        del client, handle  # every connection closed; the daemon keeps going

        reattached = AcpClient(f"unix://{daemon.socket_path}")
        listing = reattached.sessions()["sessions"]
        assert [s["session_id"] for s in listing] == [session_id]
        outcome = reattached.session(session_id).result(timeout_s=120)
        assert outcome.metrics.apps[0].heartbeats > 0

    def test_malformed_line_gets_error_frame(self, daemon):
        import socket

        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30)
            sock.connect(daemon.socket_path)
            sock.sendall(b"this is not a frame\n")
            sock.shutdown(socket.SHUT_WR)
            response = sock.makefile("r").readline()
        data = json.loads(response)
        assert data["type"] == "error"
        assert "undecodable" in data["payload"]["error"]


class TestHttp:
    def test_frames_and_metrics_and_sessions(self, daemon):
        base = f"http://127.0.0.1:{daemon.http_port}"
        client = AcpClient(base)
        handle = attach_two_apps(client)
        handle.run()
        # Live scrape while the session is running.
        text = (
            urllib.request.urlopen(base + "/metrics", timeout=30)
            .read()
            .decode()
        )
        assert "acp_sessions_attached_total" in text
        assert f'session="{handle.session_id}"' in text
        listing = json.loads(
            urllib.request.urlopen(base + "/v1/sessions", timeout=30)
            .read()
            .decode()
        )
        assert [s["session_id"] for s in listing["sessions"]] == [
            handle.session_id
        ]
        outcome = handle.result(timeout_s=120)
        assert outcome.max_rate > 0
        handle.detach()

    def test_unknown_path_is_404(self, daemon):
        base = f"http://127.0.0.1:{daemon.http_port}"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/nope", timeout=30)
        assert excinfo.value.code == 404


class TestEndpointParsing:
    def test_bad_endpoint_refused(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="endpoint"):
            AcpClient("ftp://nope")
        with pytest.raises(ConfigurationError, match="socket path"):
            AcpClient("unix://")

    def test_daemon_needs_a_transport(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="socket path"):
            AcpDaemon()
