"""Wire-format tests: round-trips, schema checks, forward tolerance."""

import json

import pytest

from repro.acp import wire
from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig, RunShape
from repro.experiments.serialize import checkpoint_payload


def roundtrip(frame: wire.Frame) -> wire.Frame:
    return wire.decode_frame(wire.encode_frame(frame))


class TestRoundTrip:
    def test_heartbeat(self):
        frame = wire.heartbeat_frame(
            "s1", 3, "swaptions-0", 41, 1.25, rate=37.5, tag="phase-a"
        )
        back = roundtrip(frame)
        assert back == frame
        assert back.payload["rate"] == 37.5

    def test_sensor(self):
        frame = wire.sensor_frame("s1", 4, 2.0, {"big": 3.5, "little": 0.75})
        assert roundtrip(frame) == frame

    def test_plan(self):
        frame = wire.plan_frame("s1", 5, "app", 2.0, [4, 4, 2000, 1400])
        assert roundtrip(frame) == frame

    def test_actuate(self):
        frame = wire.actuate_frame("s1", 6, "app", 2.0, 4, 4, 2000, 1400)
        assert roundtrip(frame) == frame

    def test_checkpoint(self):
        envelope = checkpoint_payload("mp-hars", 12.5, {"ratio": 1.5})
        frame = wire.checkpoint_frame("s1", 7, 12.5, {"mp-hars": envelope})
        assert roundtrip(frame) == frame

    def test_checkpoint_request_direction_may_be_empty(self):
        frame = wire.make_frame("checkpoint", "s1", 8, {})
        assert roundtrip(frame) == frame

    def test_swap(self):
        frame = wire.swap_frame("s1", 9, "hars-i", adapt_every=3)
        back = roundtrip(frame)
        assert back.payload == {"policy": "hars-i", "adapt_every": 3}

    def test_error(self):
        frame = wire.error_frame("s1", 10, "boom", detail="stack")
        assert roundtrip(frame) == frame

    def test_floats_survive_bit_exactly(self):
        value = 0.1 + 0.2  # not representable "nicely"; repr round-trips
        frame = wire.sensor_frame("s1", 1, value, {"big": value * 3})
        back = roundtrip(frame)
        assert back.payload["time_s"] == value
        assert back.payload["watts"]["big"] == value * 3


class TestForwardTolerance:
    def test_unknown_payload_fields_pass_through(self):
        line = wire.encode_frame(
            wire.heartbeat_frame("s1", 1, "app", 0, 0.0)
        )
        data = json.loads(line)
        data["payload"]["future_field"] = {"nested": True}
        back = wire.decode_frame(json.dumps(data))
        assert back.payload["future_field"] == {"nested": True}

    def test_unknown_envelope_fields_preserved_on_reencode(self):
        data = json.loads(
            wire.encode_frame(wire.make_frame("hello", "", 1, {}))
        )
        data["trace_id"] = "abc123"
        back = wire.decode_frame(json.dumps(data))
        assert back.extra == {"trace_id": "abc123"}
        # Tolerant readers must not be lossy rewriters.
        reencoded = json.loads(wire.encode_frame(back))
        assert reencoded["trace_id"] == "abc123"

    def test_unknown_frame_type_is_decodable(self):
        line = json.dumps(
            {
                "schema_version": wire.WIRE_SCHEMA_VERSION,
                "session_id": "s1",
                "seq": 1,
                "type": "telepathy",
                "payload": {"whatever": 1},
            }
        )
        assert wire.decode_frame(line).type == "telepathy"


class TestRejection:
    def test_wrong_schema_version(self):
        data = json.loads(
            wire.encode_frame(wire.make_frame("hello", "", 1, {}))
        )
        data["schema_version"] = wire.WIRE_SCHEMA_VERSION + 1
        with pytest.raises(ConfigurationError, match="schema_version"):
            wire.decode_frame(json.dumps(data))

    def test_malformed_json(self):
        with pytest.raises(ConfigurationError, match="undecodable"):
            wire.decode_frame("{not json")

    def test_non_object(self):
        with pytest.raises(ConfigurationError, match="not a JSON object"):
            wire.decode_frame("[1, 2]")

    @pytest.mark.parametrize("missing", ["schema_version", "seq", "type"])
    def test_missing_envelope_field(self, missing):
        data = json.loads(
            wire.encode_frame(wire.make_frame("hello", "", 1, {}))
        )
        del data[missing]
        with pytest.raises(ConfigurationError):
            wire.decode_frame(json.dumps(data))

    def test_bad_payload_schema(self):
        line = json.dumps(
            {
                "schema_version": wire.WIRE_SCHEMA_VERSION,
                "session_id": "s1",
                "seq": 1,
                "type": "heartbeat",
                "payload": {"app": "x"},  # hb_index/time_s missing
            }
        )
        with pytest.raises(ConfigurationError, match="heartbeat frame"):
            wire.decode_frame(line)

    def test_bool_is_not_a_number(self):
        line = json.dumps(
            {
                "schema_version": wire.WIRE_SCHEMA_VERSION,
                "session_id": "s1",
                "seq": 1,
                "type": "sensor",
                "payload": {"time_s": 0.0, "watts": {"big": True}},
            }
        )
        with pytest.raises(ConfigurationError, match="number"):
            wire.decode_frame(line)

    def test_bad_state_quad(self):
        with pytest.raises(ConfigurationError, match="state"):
            wire.plan_frame("s1", 1, "app", 0.0, [4, 4, 2000])


class TestShapeAndConfig:
    def test_shape_roundtrip(self):
        shape = RunShape(
            benchmark="swaptions",
            n_units=123,
            n_threads=6,
            target_fraction=0.75,
            seed=7,
        )
        assert wire.shape_from_wire(wire.shape_to_wire(shape)) == shape

    def test_shape_unknown_fields_ignored(self):
        data = wire.shape_to_wire(RunShape(benchmark="swaptions"))
        data["future"] = "field"
        assert wire.shape_from_wire(data) == RunShape(benchmark="swaptions")

    def test_config_roundtrip(self):
        config = RunConfig(
            profile="vector", telemetry=True, checkpoint=2.5, supervision=True
        )
        back = wire.config_from_wire(wire.config_to_wire(config))
        assert back.profile == "vector"
        assert back.telemetry is True
        assert back.checkpoint == 2.5
        assert back.supervision is True

    def test_config_refuses_unserializable_layers(self):
        from repro.faults import FaultConfig

        config = RunConfig(faults=FaultConfig(sensor_dropout_rate=0.1))
        with pytest.raises(ConfigurationError, match="faults"):
            wire.config_to_wire(config)
