"""The ACP's headline guarantee: an attached run is THE run.

A simulation attached through the loopback transport — every frame
JSON-encoded and decoded, the session stepped in bounded segments with
command-queue drains between them — must be *bit-identical* to
``repro.experiments.run()`` in-process: same per-app summaries, same
trace rows, same target window, same max rate.
"""

import pytest

from repro.experiments.runner import RunConfig, RunShape, run
from repro.experiments.serialize import run_metrics_to_dict


def trace_rows(outcome):
    return {
        name: [
            (
                p.time_s,
                p.hb_index,
                p.rate,
                p.big_cores,
                p.little_cores,
                p.big_freq_mhz,
                p.little_freq_mhz,
            )
            for p in outcome.trace.points(name)
        ]
        for name in outcome.trace.app_names
    }


def assert_identical(in_process, attached):
    assert run_metrics_to_dict(in_process.metrics) == run_metrics_to_dict(
        attached.metrics
    )
    assert trace_rows(in_process) == trace_rows(attached)
    assert in_process.max_rate == attached.max_rate
    assert in_process.target == attached.target


class TestSingleApp:
    @pytest.mark.parametrize("version", ["hars-i", "hars-ei"])
    def test_bit_identical(self, version):
        shape = RunShape(benchmark="swaptions", n_units=60)
        config = RunConfig(telemetry=True)
        in_process = run(version, shape, config)
        attached = run(version, shape, config.with_(acp="loopback"))
        assert_identical(in_process, attached)

    def test_identical_under_vector_profile(self):
        shape = RunShape(benchmark="bodytrack", n_units=50)
        config = RunConfig(profile="vector")
        assert_identical(
            run("hars-ei", shape, config),
            run("hars-ei", shape, config.with_(acp="loopback")),
        )


class TestMultiApp:
    def test_bit_identical(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=50),
            RunShape(benchmark="bodytrack", n_units=50),
        ]
        config = RunConfig()
        in_process = run("mp-hars-ei", shapes, config)
        attached = run("mp-hars-ei", shapes, config.with_(acp="loopback"))
        assert_identical(in_process, attached)

    def test_identical_with_supervision_and_checkpoints(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=50),
            RunShape(benchmark="bodytrack", n_units=50),
        ]
        config = RunConfig(supervision=True, checkpoint=2.0, telemetry=True)
        in_process = run("mp-hars-i", shapes, config)
        attached = run("mp-hars-i", shapes, config.with_(acp="loopback"))
        assert_identical(in_process, attached)


class TestRouting:
    def test_acp_refuses_fleet(self):
        from repro.errors import ConfigurationError
        from repro.fleet import FleetConfig

        with pytest.raises(ConfigurationError, match="fleet"):
            RunConfig(acp="loopback", fleet=FleetConfig())

    def test_acp_must_be_a_string(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="acp"):
            RunConfig(acp=42)
