"""Session lifecycle on the loopback server: attach → hot-swap →
checkpoint → crash quarantine → detach → restart recovery.

Everything here runs the server inline (``threaded=False``), so the
tests are deterministic: each request is fully served before the next.
"""

import json
import os

import pytest

from repro.acp.client import AcpClient, AcpError
from repro.acp.server import AcpServer
from repro.acp.session import FINISHED, QUARANTINED, resolve_policy
from repro.core.policy import POLICY_BY_NAME
from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig, RunShape


def two_app_shapes(n_units=200):
    return [
        RunShape(benchmark="swaptions", n_units=n_units),
        RunShape(benchmark="bodytrack", n_units=n_units),
    ]


def attach_multi(client, **kwargs):
    return client.attach(
        "mp-hars-ei",
        two_app_shapes(),
        RunConfig(telemetry=True, checkpoint=2.0),
        **kwargs,
    )


class TestLifecycle:
    def test_attach_advance_finish(self):
        client = AcpClient("loopback")
        handle = client.attach(
            "hars-i", RunShape(benchmark="swaptions", n_units=60)
        )
        status = handle.advance(1.0)
        assert status["state"] == "running"
        assert status["time_s"] == pytest.approx(1.0)
        outcome = handle.result()
        assert [a.app_name for a in outcome.metrics.apps] == ["swaptions"]
        assert handle.status()["state"] == FINISHED

    def test_hello_and_sessions(self):
        client = AcpClient("loopback")
        assert client.hello()["server"] == "hars-repro-acp"
        handle = attach_multi(client)
        listing = client.sessions()
        assert [s["session_id"] for s in listing["sessions"]] == [
            handle.session_id
        ]

    def test_detach_frees_the_session(self):
        client = AcpClient("loopback")
        handle = attach_multi(client)
        handle.detach()
        with pytest.raises(AcpError, match="no such session"):
            handle.advance(1.0)


class TestHotSwap:
    def test_swap_lands_before_the_next_plan(self):
        """A swap must be live within one adaptation period.

        The planner re-reads ``self.policy`` on every plan, so the
        strongest possible guarantee holds: the *very next* planner
        invocation after the swap — by definition at most one adaptation
        period away — already runs under the new policy.  A spy on the
        live planner proves it end-to-end.
        """
        client = AcpClient("loopback")
        handle = client.attach(
            "hars-ei", RunShape(benchmark="swaptions", n_units=300)
        )
        handle.advance(0.5)
        result = handle.swap_policy("hars-i")
        assert result["policy"] == "HARS-I"
        assert result["controllers"]

        session = client._server._sessions[handle.session_id]
        manager = next(
            c
            for c in session.prepared.sim.controllers
            if getattr(c, "mape", None) is not None
        )
        assert manager.policy is POLICY_BY_NAME["HARS-I"]
        planner = manager.mape.planner
        assert planner.policy is POLICY_BY_NAME["HARS-I"]

        calls = []
        original_plan = planner.plan

        def spying_plan(*args, **kwargs):
            calls.append(planner.policy.name)
            return original_plan(*args, **kwargs)

        planner.plan = spying_plan
        handle.advance(10.0)
        assert calls, "planner never ran after the swap"
        assert calls[0] == "HARS-I"

        events = handle.events()
        swap_events = [e for e in events if e.type == "policy-swapped"]
        assert len(swap_events) == 1
        assert swap_events[0].payload["policy"] == "HARS-I"
        assert swap_events[0].payload["time_s"] == result["time_s"]

    def test_swap_retargets_the_multi_app_manager(self):
        """MP-HARS swaps too: the manager object and its MAPE planner
        both hold the new policy, and the bus records the swap."""
        client = AcpClient("loopback")
        handle = attach_multi(client)
        handle.advance(5.0)
        result = handle.swap_policy("hars-i")
        assert result["controllers"] == ["mp-hars"]

        session = client._server._sessions[handle.session_id]
        manager = next(
            c
            for c in session.prepared.sim.controllers
            if getattr(c, "mape", None) is not None
        )
        assert manager.policy is POLICY_BY_NAME["HARS-I"]
        assert manager.mape.planner.policy is POLICY_BY_NAME["HARS-I"]
        swap_events = [
            e for e in handle.events() if e.type == "policy-swapped"
        ]
        assert len(swap_events) == 1
        assert swap_events[0].payload["controllers"] == ["mp-hars"]

    def test_swap_is_counted_by_telemetry(self):
        client = AcpClient("loopback")
        handle = attach_multi(client)
        handle.advance(2.0)
        handle.swap_policy("hars-e")
        assert 'policy_swaps_total{' in client.metrics_text()

    def test_swap_rejects_unknown_policy(self):
        client = AcpClient("loopback")
        handle = attach_multi(client)
        with pytest.raises(AcpError, match="unknown policy"):
            handle.swap_policy("round-robin")
        # The refusal did not poison the session.
        assert handle.advance(1.0)["state"] == "running"

    def test_resolve_policy_names(self):
        assert resolve_policy("hars-i").name == "HARS-I"
        assert resolve_policy("MP-HARS-EI").name == "HARS-EI"
        with pytest.raises(ConfigurationError):
            resolve_policy("nope")


class TestCheckpointAndQuarantine:
    def test_checkpoint_now_returns_validated_envelopes(self):
        client = AcpClient("loopback")
        handle = attach_multi(client)
        handle.advance(3.0)
        result = handle.checkpoint()
        assert result["store"], "no checkpoint-capable controller found"
        for envelope in result["store"].values():
            assert envelope["time_s"] == result["time_s"]
            assert "body" in envelope

    def test_crash_is_quarantined_not_fatal(self):
        server = AcpServer()
        client = AcpClient("loopback", server=server)
        sick = attach_multi(client)
        healthy = client.attach(
            "hars-i", RunShape(benchmark="swaptions", n_units=60)
        )

        session = server._sessions[sick.session_id]
        manager = next(
            c
            for c in session.prepared.sim.controllers
            if getattr(c, "mape", None) is not None
        )
        def explode(*args, **kwargs):
            raise RuntimeError("injected controller crash")
        manager.mape.planner.plan = explode

        with pytest.raises(AcpError, match="quarantined"):
            sick.run()
        status = [
            s
            for s in client.sessions()["sessions"]
            if s["session_id"] == sick.session_id
        ][0]
        assert status["state"] == QUARANTINED
        assert "injected controller crash" in status["error"]
        # The daemon and its other tenant are untouched.
        outcome = healthy.result()
        assert outcome.metrics.apps[0].heartbeats > 0

    def test_quarantined_session_refuses_further_runs(self):
        server = AcpServer()
        client = AcpClient("loopback", server=server)
        handle = attach_multi(client)
        server._sessions[handle.session_id].quarantine(RuntimeError("dead"))
        with pytest.raises(AcpError, match="quarantined|cannot run"):
            handle.run()


class TestRestartRecovery:
    def test_daemon_restart_restores_warm(self, tmp_path):
        state_dir = str(tmp_path / "state")
        first = AcpServer(state_dir=state_dir)
        client = AcpClient("loopback", server=first)
        handle = attach_multi(client, session_id="tenant-a")
        handle.advance(5.0)
        handle.checkpoint()
        handle.detach()
        assert os.path.exists(os.path.join(state_dir, "tenant-a.json"))

        # A new server process scans the state dir on construction...
        second = AcpServer(state_dir=state_dir)
        assert "tenant-a" in second.recovered
        assert second.ledger == []
        client2 = AcpClient("loopback", server=second)
        resumed = attach_multi(client2, session_id="tenant-a", resume=True)
        resumed.advance(1.0)
        restores = [
            e for e in resumed.events() if e.type == "restored"
        ]
        assert restores and all(e.payload["warm"] for e in restores)

    def test_torn_state_file_cold_starts_with_ledger_entry(self, tmp_path):
        state_dir = str(tmp_path / "state")
        first = AcpServer(state_dir=state_dir)
        client = AcpClient("loopback", server=first)
        handle = attach_multi(client, session_id="tenant-b")
        handle.advance(5.0)
        handle.checkpoint()
        handle.detach()

        path = os.path.join(state_dir, "tenant-b.json")
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text[: len(text) // 2])  # torn mid-write

        second = AcpServer(state_dir=state_dir)
        assert len(second.ledger) == 1
        assert second.ledger[0]["action"] == "cold-start fallback"
        client2 = AcpClient("loopback", server=second)
        resumed = attach_multi(client2, session_id="tenant-b", resume=True)
        resumed.advance(1.0)
        restores = [e for e in resumed.events() if e.type == "restored"]
        assert restores and not any(e.payload["warm"] for e in restores)
        # The operator sees the ledger through the sessions listing.
        assert client2.sessions()["ledger"]


class TestStreaming:
    def test_stream_events_carries_heartbeats_and_sensors(self):
        client = AcpClient("loopback")
        handle = client.attach(
            "hars-i",
            RunShape(benchmark="swaptions", n_units=100),
            RunConfig(),
            stream_events=True,
        )
        handle.advance(3.0)
        types = {e.type for e in handle.events()}
        assert "heartbeat" in types
        assert "plan" in types and "actuate" in types

    def test_observation_is_result_neutral(self):
        """Streaming observation frames must not perturb the physics."""
        from repro.experiments.runner import run
        from repro.experiments.serialize import run_metrics_to_dict

        shape = RunShape(benchmark="swaptions", n_units=60)
        baseline = run("hars-i", shape, RunConfig())
        client = AcpClient("loopback")
        handle = client.attach("hars-i", shape, RunConfig(), stream_events=True)
        streamed = handle.result()
        assert run_metrics_to_dict(baseline.metrics) == run_metrics_to_dict(
            streamed.metrics
        )
