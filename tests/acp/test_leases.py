"""Session leases: TTL grants, frame refresh, orphaning, resume.

The inline tests drive an injectable clock, so lease time is fully
deterministic; the daemon test uses the real clock and the background
reaper, asserting the liveness half of the contract (an abandoned
session orphans *without* any further client frame, and its driver
thread is gone).
"""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.acp import wire
from repro.acp.client import AcpClient, AcpError
from repro.acp.server import AcpServer
from repro.acp.transport import AcpDaemon
from repro.experiments.runner import RunConfig, RunShape

SHAPE = RunShape(benchmark="swaptions", n_units=60)
CONFIG = RunConfig(telemetry=True, checkpoint=2.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clocked():
    clock = FakeClock()
    server = AcpServer(threaded=False, lease_ttl_s=10.0, clock=clock)
    return clock, server, AcpClient(server=server)


class TestLeaseLifecycle:
    def test_any_frame_refreshes_the_lease(self, clocked):
        clock, server, client = clocked
        handle = client.attach("hars-ei", SHAPE, CONFIG, session_id="leased")
        assert handle.last_status["lease_ttl_s"] == 10.0
        for step in range(1, 6):
            clock.now = step * 8.0  # always past the original deadline
            handle.advance(1.0)  # ...but each frame re-arms it
        assert [
            s["session_id"] for s in client.sessions()["sessions"]
        ] == ["leased"]
        assert server.lease_expirations == 0

    def test_expiry_orphans_checkpoints_and_releases(self, clocked):
        clock, server, client = clocked
        handle = client.attach("hars-ei", SHAPE, CONFIG, session_id="leased")
        handle.advance(3.0)
        clock.now = 100.0
        listing = client.sessions()
        assert listing["sessions"] == []
        [orphan] = listing["orphaned"]
        assert orphan["session_id"] == "leased"
        assert orphan["state"] == "orphaned"
        assert orphan["prior_state"] == "running"
        assert server.lease_expirations == 1
        # The checkpoint store is registered for resume.
        assert "leased" in listing["recovered"]
        text = server.metrics_text()
        assert "acp_lease_expired_total 1.0" in text
        assert 'acp_sessions{state="orphaned"} 1.0' in text

    def test_orphaned_session_refuses_commands_typed(self, clocked):
        clock, server, client = clocked
        handle = client.attach("hars-ei", SHAPE, CONFIG, session_id="leased")
        handle.advance(1.0)
        clock.now = 100.0
        with pytest.raises(AcpError) as excinfo:
            handle.advance(1.0)
        assert excinfo.value.code == wire.ERR_ORPHANED
        assert "resume" in str(excinfo.value)

    def test_resume_warm_restores_an_orphan(self, clocked):
        clock, server, client = clocked
        handle = client.attach("hars-ei", SHAPE, CONFIG, session_id="leased")
        handle.advance(4.0)
        clock.now = 100.0
        client.sessions()  # the sweep runs, the orphan lands
        resumed = client.attach(
            "hars-ei", SHAPE, CONFIG, session_id="leased", resume=True
        )
        assert resumed.last_status["resumed_from"]
        outcome = resumed.result()
        assert outcome.metrics.apps[0].heartbeats > 0
        # Orphan bookkeeping is cleared by the re-attach.
        listing = client.sessions()
        assert listing["orphaned"] == []

    def test_sessions_report_remaining_lease(self, clocked):
        clock, server, client = clocked
        client.attach("hars-ei", SHAPE, CONFIG, session_id="leased")
        clock.now = 4.0
        [status] = client.sessions()["sessions"]
        assert status["lease_expires_in_s"] == pytest.approx(6.0)

    def test_unleased_sessions_never_expire(self):
        clock = FakeClock()
        server = AcpServer(threaded=False, clock=clock)  # no default TTL
        client = AcpClient(server=server)
        client.attach("hars-ei", SHAPE, CONFIG, session_id="eternal")
        clock.now = 1e9
        assert [
            s["session_id"] for s in client.sessions()["sessions"]
        ] == ["eternal"]

    def test_attach_can_request_its_own_ttl(self):
        clock = FakeClock()
        server = AcpServer(threaded=False, clock=clock)
        client = AcpClient(server=server)
        client.attach(
            "hars-ei", SHAPE, CONFIG, session_id="short", lease_ttl_s=2.0
        )
        clock.now = 3.0
        listing = client.sessions()
        assert listing["sessions"] == []
        assert [o["session_id"] for o in listing["orphaned"]] == ["short"]

    def test_bad_ttl_refused(self, clocked):
        _, _, client = clocked
        with pytest.raises(ConfigurationError):
            client.attach(
                "hars-ei", SHAPE, CONFIG, session_id="bad", lease_ttl_s=-1.0
            )

    def test_server_rejects_nonpositive_default_ttl(self):
        with pytest.raises(ConfigurationError):
            AcpServer(lease_ttl_s=0.0)


class TestDaemonReaper:
    def test_inflight_result_wait_counts_as_liveness(self, tmp_path):
        """A client blocked in a long ``result`` RPC sends no frames,
        but its in-flight frame proves it is live: the reaper must
        refresh the lease instead of orphaning the session under it."""
        daemon = AcpDaemon(
            socket_path=str(tmp_path / "acp.sock"),
            state_dir=str(tmp_path / "state"),
            lease_ttl_s=1.0,
        )
        daemon.start()
        try:
            client = AcpClient(f"unix://{daemon.socket_path}")
            handle = client.attach(
                "mp-hars-ei",
                [
                    RunShape(benchmark="swaptions", n_units=2000),
                    RunShape(benchmark="bodytrack", n_units=2000),
                ],
                CONFIG,
                session_id="patient",
            )
            handle.run()
            # The run takes well over the 1s TTL of wall-clock time;
            # result() is one blocking RPC for all of it.
            outcome = handle.result(timeout_s=120.0)
            assert outcome.metrics.apps[0].heartbeats == 2000
            assert daemon.acp.lease_expirations == 0
            handle.detach()  # would raise ERR_ORPHANED before the fix
        finally:
            daemon.stop()


    def test_abandoned_session_orphans_without_frames(self, tmp_path):
        """The background reaper fires on wall time alone, the driver
        thread exits, and the session resumes after re-attach."""
        daemon = AcpDaemon(
            socket_path=str(tmp_path / "acp.sock"),
            state_dir=str(tmp_path / "state"),
            lease_ttl_s=1.0,
        )
        daemon.start()
        try:
            client = AcpClient(f"unix://{daemon.socket_path}")
            handle = client.attach(
                "mp-hars-ei",
                [
                    RunShape(benchmark="swaptions", n_units=4000),
                    RunShape(benchmark="bodytrack", n_units=4000),
                ],
                CONFIG,
                session_id="abandoned",
            )
            handle.run()  # background driver starts
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if daemon.acp.lease_expirations > 0:
                    break
                time.sleep(0.1)
            assert daemon.acp.lease_expirations == 1
            # No leaked driver thread.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and any(
                t.name == "acp-abandoned" for t in threading.enumerate()
            ):
                time.sleep(0.05)
            assert not any(
                t.name == "acp-abandoned" for t in threading.enumerate()
            )
            listing = client.sessions()
            assert [o["session_id"] for o in listing["orphaned"]] == [
                "abandoned"
            ]
            resumed = client.attach(
                "mp-hars-ei",
                [
                    RunShape(benchmark="swaptions", n_units=4000),
                    RunShape(benchmark="bodytrack", n_units=4000),
                ],
                CONFIG,
                session_id="abandoned",
                resume=True,
            )
            assert resumed.last_status["resumed_from"]
            resumed.detach()
        finally:
            daemon.stop()
