"""Unit tests for figure-module logic with synthetic data (no sims)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig5_1 import GM, PerfWattComparison
from repro.experiments.fig5_2 import gain_compression
from repro.experiments.fig5_3 import DistanceSweep
from repro.experiments.fig5_4 import CASES, MultiAppComparison, case_label


def _comparison(target, gains):
    cmp = PerfWattComparison(
        target_fraction=target, versions=("baseline", "hars-e")
    )
    for code, gain in gains.items():
        cmp.normalized[code] = {"baseline": 1.0, "hars-e": gain}
    return cmp


class TestPerfWattComparison:
    def test_geomean(self):
        cmp = _comparison(0.5, {"BL": 2.0, "SW": 8.0})
        assert cmp.geomean["hars-e"] == pytest.approx(4.0)
        assert cmp.geomean["baseline"] == pytest.approx(1.0)

    def test_render_contains_gm_row(self):
        cmp = _comparison(0.5, {"BL": 2.0})
        text = cmp.render()
        assert GM in text
        assert "50%" in text


class TestGainCompression:
    def test_ratios(self):
        default = _comparison(0.5, {"BL": 4.0})
        high = _comparison(0.75, {"BL": 2.0})
        ratios = gain_compression(default, high)
        assert ratios["hars-e"] == pytest.approx(0.5)
        assert ratios["baseline"] == pytest.approx(1.0)


class TestDistanceSweep:
    def _sweep(self, efficiencies):
        sweep = DistanceSweep(distances=(1, 3, 5, 7, 9))
        sweep.efficiency[0.5] = efficiencies
        sweep.cpu_percent[0.5] = {d: 0.1 * d for d in efficiencies}
        return sweep

    def test_knee_finds_plateau_start(self):
        sweep = self._sweep({1: 1.0, 3: 1.2, 5: 1.3, 7: 1.3, 9: 1.31})
        assert sweep.knee(0.5) == 5

    def test_knee_tolerance(self):
        sweep = self._sweep({1: 1.0, 3: 1.28, 5: 1.3, 7: 1.3, 9: 1.3})
        assert sweep.knee(0.5, tolerance=0.02) == 3
        assert sweep.knee(0.5, tolerance=0.001) == 5

    def test_render(self):
        sweep = self._sweep({1: 1.0, 3: 1.1, 5: 1.2, 7: 1.2, 9: 1.2})
        text = sweep.render()
        assert "manager CPU %" in text
        assert "50%" in text


class TestMultiAppComparison:
    def test_case_labels_follow_paper_order(self):
        labels = [case_label(pair, i) for i, pair in enumerate(CASES)]
        assert labels[0] == "case1:BO+SW"
        assert labels[3] == "case4:BO+FL"
        assert labels[5] == "case6:BO+BL"

    def test_geomean_and_render(self):
        cmp = MultiAppComparison(versions=("baseline", "mp-hars-e"))
        cmp.normalized["case1:BO+SW"] = {"baseline": 1.0, "mp-hars-e": 2.0}
        cmp.normalized["case2:BL+SW"] = {"baseline": 1.0, "mp-hars-e": 4.5}
        assert cmp.geomean["mp-hars-e"] == pytest.approx(3.0)
        assert "case1:BO+SW" in cmp.render()
