"""Tests for the Figures 5.5–5.7 behaviour-run module (small scale)."""

import pytest

from repro.experiments.fig5_5_7 import BEHAVIOUR_VERSIONS, run_behaviour


class TestBehaviourRun:
    @pytest.fixture(scope="class")
    def mp_run(self, xu3):
        return run_behaviour(
            "mp-hars-e",
            spec=xu3,
            pair=("bodytrack", "fluidanimate"),
            n_units=50,
        )

    def test_versions_are_the_paper_three(self):
        assert BEHAVIOUR_VERSIONS == ("cons-i", "mp-hars-i", "mp-hars-e")

    def test_traces_exist_for_both_apps(self, mp_run):
        assert len(mp_run.app_names()) == 2
        for app_name in mp_run.app_names():
            assert mp_run.trace.series(app_name, "rate")
            assert mp_run.trace.series(app_name, "big_cores")

    def test_targets_recorded(self, mp_run):
        for app_name in mp_run.app_names():
            target = mp_run.targets[app_name]
            assert target.min_rate < target.max_rate

    def test_steady_mean_and_overshoot(self, mp_run):
        app_name = mp_run.app_names()[0]
        assert mp_run.steady_mean(app_name, "rate", skip=10) > 0
        assert 0.0 <= mp_run.overshoot_fraction(app_name, skip=10) <= 1.0

    def test_render_contains_all_columns(self, mp_run):
        text = mp_run.render()
        for label in ("HPS", "B_Core", "L_Core", "B_Freq", "L_Freq"):
            assert label in text
