"""Tests for result serialization and seed-repetition statistics."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig5_1 import PerfWattComparison
from repro.experiments.fig5_3 import DistanceSweep
from repro.experiments.metrics import AppRunMetrics, RunMetrics
from repro.experiments.repetition import (
    Spread,
    compare_with_spread,
    repeat_single,
    significantly_better,
    spread_of,
)
from repro.experiments.runner import RunShape
from repro.experiments.serialize import (
    comparison_to_dict,
    dump_json,
    load_json,
    run_metrics_from_dict,
    run_metrics_to_dict,
    sweep_to_dict,
)


def _metrics(version="hars-e", perf=0.9, power=2.0):
    return RunMetrics(
        version=version,
        apps=(
            AppRunMetrics(
                app_name="a",
                heartbeats=40,
                overall_rate=1.2,
                mean_normalized_perf=perf,
                target_min=0.9,
                target_avg=1.0,
                target_max=1.1,
            ),
        ),
        elapsed_s=100.0,
        avg_power_w=power,
        manager_overhead_s=1.5,
        final_state="0B@800+4L@1100",
    )


class TestRunMetricsRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = _metrics()
        restored = run_metrics_from_dict(run_metrics_to_dict(original))
        assert restored == original
        assert restored.perf_per_watt == original.perf_per_watt

    def test_missing_field_rejected(self):
        data = run_metrics_to_dict(_metrics())
        del data["avg_power_w"]
        with pytest.raises(ConfigurationError):
            run_metrics_from_dict(data)

    def test_json_serializable(self):
        json.dumps(run_metrics_to_dict(_metrics()))


class TestComparisonSerialization:
    def test_comparison_dict(self):
        cmp = PerfWattComparison(
            target_fraction=0.5, versions=("baseline", "hars-e")
        )
        cmp.normalized["SW"] = {"baseline": 1.0, "hars-e": 2.5}
        cmp.raw["SW"] = {
            "baseline": _metrics("baseline", 1.0, 6.0),
            "hars-e": _metrics("hars-e"),
        }
        data = comparison_to_dict(cmp)
        assert data["kind"] == "perf-watt-comparison"
        assert data["normalized"]["SW"]["hars-e"] == 2.5
        assert data["geomean"]["hars-e"] == pytest.approx(2.5)
        json.dumps(data)

    def test_sweep_dict(self):
        sweep = DistanceSweep(distances=(1, 3))
        sweep.efficiency[0.5] = {1: 1.0, 3: 1.2}
        sweep.cpu_percent[0.5] = {1: 0.5, 3: 0.8}
        data = sweep_to_dict(sweep)
        assert data["efficiency"]["0.5"][3] == 1.2
        json.dumps(data)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "result.json")
        dump_json({"kind": "test", "x": 1}, path)
        assert load_json(path)["x"] == 1

    def test_load_rejects_foreign_json(self, tmp_path):
        path = str(tmp_path / "foreign.json")
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        with pytest.raises(ConfigurationError):
            load_json(path)


class TestSpread:
    def test_spread_of_constant(self):
        spread = spread_of([2.0, 2.0, 2.0])
        assert spread.mean == 2.0
        assert spread.std == 0.0
        assert spread.ci95_half_width == 0.0

    def test_spread_of_values(self):
        spread = spread_of([1.0, 2.0, 3.0])
        assert spread.mean == 2.0
        assert spread.std == pytest.approx(1.0)
        assert spread.ci95_half_width == pytest.approx(1.96 / 3**0.5)

    def test_single_value(self):
        spread = spread_of([5.0])
        assert spread.n == 1 and spread.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            spread_of([])

    def test_significantly_better(self):
        a = Spread(mean=3.0, std=0.1, n=10)
        b = Spread(mean=1.0, std=0.1, n=10)
        assert significantly_better(a, b)
        assert not significantly_better(b, a)
        overlapping = Spread(mean=2.95, std=1.0, n=4)
        assert not significantly_better(a, overlapping)

    def test_summary_format(self):
        assert "±" in Spread(mean=1.0, std=0.2, n=4).summary()


class TestRepetition:
    def test_repeat_single_over_seeds(self, xu3):
        shape = RunShape("fluidanimate", n_units=40)
        spread, values = repeat_single("hars-e", shape, seeds=(0, 1, 2), spec=xu3)
        assert spread.n == 3
        assert len(values) == 3
        # Seeded noise makes runs differ, but not wildly.
        assert spread.std / spread.mean < 0.2

    def test_compare_with_spread_separates_versions(self, xu3):
        shape = RunShape("fluidanimate", n_units=40)
        spreads = compare_with_spread(
            ("baseline", "hars-e"), shape, seeds=(0, 1), spec=xu3
        )
        assert significantly_better(spreads["hars-e"], spreads["baseline"])

    def test_needs_seeds(self, xu3):
        with pytest.raises(ConfigurationError):
            repeat_single("baseline", RunShape("swaptions", n_units=10), ())
