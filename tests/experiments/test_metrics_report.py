"""Unit tests for run metrics and text reporting."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import (
    AppRunMetrics,
    RunMetrics,
    geomean_across,
    normalize_to_baseline,
)
from repro.experiments.report import (
    bar_chart,
    format_table,
    grouped_bars,
    sampled_series,
)


def _app_metrics(perf=0.9, name="a"):
    return AppRunMetrics(
        app_name=name,
        heartbeats=100,
        overall_rate=1.0,
        mean_normalized_perf=perf,
        target_min=0.9,
        target_avg=1.0,
        target_max=1.1,
    )


def _run(version="x", perf=0.9, power=2.0, overhead=0.0, n_apps=1):
    return RunMetrics(
        version=version,
        apps=tuple(_app_metrics(perf, f"a{i}") for i in range(n_apps)),
        elapsed_s=100.0,
        avg_power_w=power,
        manager_overhead_s=overhead,
    )


class TestRunMetrics:
    def test_perf_per_watt_single_app(self):
        assert _run(perf=0.8, power=2.0).perf_per_watt == pytest.approx(0.4)

    def test_perf_per_watt_multi_app_uses_mean_perf(self):
        run = RunMetrics(
            version="x",
            apps=(_app_metrics(1.0, "a"), _app_metrics(0.5, "b")),
            elapsed_s=10.0,
            avg_power_w=3.0,
        )
        assert run.perf_per_watt == pytest.approx(0.75 / 3.0)

    def test_manager_cpu_percent(self):
        assert _run(overhead=5.0).manager_cpu_percent == pytest.approx(5.0)

    def test_app_lookup(self):
        run = _run(n_apps=2)
        assert run.app("a1").app_name == "a1"
        with pytest.raises(ConfigurationError):
            run.app("missing")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunMetrics(version="x", apps=(), elapsed_s=1.0, avg_power_w=1.0)
        with pytest.raises(ConfigurationError):
            _run(power=0.0)
        with pytest.raises(ConfigurationError):
            _app_metrics(perf=1.5)


class TestNormalization:
    def test_normalize_to_baseline(self):
        results = {
            "baseline": _run("baseline", perf=1.0, power=4.0),  # pp 0.25
            "hars": _run("hars", perf=1.0, power=2.0),  # pp 0.5
        }
        normalized = normalize_to_baseline(results)
        assert normalized["baseline"] == pytest.approx(1.0)
        assert normalized["hars"] == pytest.approx(2.0)

    def test_missing_baseline_raises(self):
        with pytest.raises(ConfigurationError):
            normalize_to_baseline({"hars": _run()})

    def test_geomean_across(self):
        rows = [{"v": 2.0}, {"v": 8.0}]
        assert geomean_across(rows, ["v"])["v"] == pytest.approx(4.0)

    def test_geomean_missing_version_raises(self):
        with pytest.raises(ConfigurationError):
            geomean_across([{"v": 2.0}, {}], ["v"])


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "22.50" in lines[-1]

    def test_format_table_validates_width(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_bar_chart_scales(self):
        chart = bar_chart({"x": 1.0, "y": 2.0}, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert lines[2].count("#") > lines[1].count("#")

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})

    def test_grouped_bars(self):
        text = grouped_bars(
            ["BL"], ["Baseline", "SO"], {"BL": {"Baseline": 1.0, "SO": 3.5}}
        )
        assert "BL" in text and "3.50" in text

    def test_sampled_series_condenses(self):
        series = [(i, float(i)) for i in range(100)]
        text = sampled_series(series, max_points=10)
        assert len(text.split()) <= 27
        assert text.startswith("0:")

    def test_sampled_series_empty(self):
        assert sampled_series([]) == "(empty series)"
