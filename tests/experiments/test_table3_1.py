"""Tests for the Table 3.1 regeneration module."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.table3_1 import build_table, regime_of, render_table


class TestRegimes:
    def test_regime_boundaries_for_paper_platform(self):
        # C_B = C_L = 4, r = 1.5: knees at 4, 6, 10.
        assert regime_of(4, 4, 4, 1.5) == "T <= C_B"
        assert regime_of(5, 4, 4, 1.5) == "C_B < T <= r*C_B"
        assert regime_of(6, 4, 4, 1.5) == "C_B < T <= r*C_B"
        assert regime_of(7, 4, 4, 1.5) == "r*C_B < T <= r*C_B + C_L"
        assert regime_of(10, 4, 4, 1.5) == "r*C_B < T <= r*C_B + C_L"
        assert regime_of(11, 4, 4, 1.5) == "r*C_B + C_L < T"

    def test_invalid_thread_count(self):
        with pytest.raises(ConfigurationError):
            regime_of(0, 4, 4, 1.5)


class TestBuildTable:
    def test_rows_for_every_thread_count(self):
        rows = build_table(max_threads=16)
        assert len(rows) == 16
        assert [r.n_threads for r in rows] == list(range(1, 17))

    def test_paper_eight_thread_row(self):
        rows = build_table()
        row = rows[7]  # T = 8
        assert row.assignment.t_big == 6
        assert row.assignment.t_little == 2
        assert row.assignment.used_big == 4
        assert row.assignment.used_little == 2

    def test_regimes_are_monotone(self):
        rows = build_table(max_threads=16)
        order = [
            "T <= C_B",
            "C_B < T <= r*C_B",
            "r*C_B < T <= r*C_B + C_L",
            "r*C_B + C_L < T",
        ]
        indices = [order.index(r.regime) for r in rows]
        assert indices == sorted(indices)

    def test_render_contains_all_columns(self):
        text = render_table(build_table(max_threads=4))
        assert "T_B" in text and "C_L,U" in text
        assert len(text.splitlines()) == 6  # header + rule + 4 rows
