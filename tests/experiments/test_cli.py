"""Tests for the command-line interface."""

import pytest

from repro.cli import QUICK_UNITS, main


class TestCli:
    def test_table3_1(self, capsys):
        assert main(["table3.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 3.1" in out
        assert "T_B" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9.9"])

    def test_requires_an_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_quick_flag_parses(self, capsys):
        # table3.1 ignores units, so this exercises flag parsing cheaply.
        assert main(["table3.1", "--quick"]) == 0

    def test_units_flag_parses(self, capsys):
        assert main(["table3.1", "--units", "10"]) == 0

    def test_quick_units_constant_is_small(self):
        assert 20 <= QUICK_UNITS <= 150


class TestCliJson:
    def test_json_flag_writes_payload(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "out.json")
        assert main(["fig5.1", "--units", "25", "--bench", "SW", "--json", path]) == 0
        with open(path) as handle:
            data = json.load(handle)
        assert data["kind"] == "perf-watt-comparison"
        assert "SW" in data["normalized"]


class TestCliAccuracy:
    def test_accuracy_command_runs_and_reports_mape(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "acc.json")
        code = main(
            ["accuracy", "--bench", "SW", "--units", "15", "--json", path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MAPE" in out
        with open(path) as handle:
            data = json.load(handle)
        assert data["kind"] == "estimator-accuracy"
        assert 0 <= data["mape"]["swaptions"]["rate_mape"] < 1.0
