"""RunConfig semantics and the run_single/run_multi deprecation path."""

import ast
import dataclasses
import warnings
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.experiments.runner import (
    RunConfig,
    RunShape,
    run,
    run_multi,
    run_single,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRunConfig:
    def test_covers_every_legacy_kwarg(self):
        fields = {f.name for f in dataclasses.fields(RunConfig)}
        assert set(runner._LEGACY_KWARGS) <= fields

    def test_is_frozen(self):
        config = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.profile = "legacy"

    def test_with_replaces_without_mutating(self):
        base = RunConfig()
        fast = base.with_(telemetry=True, checkpoint=2.0)
        assert fast.telemetry is True
        assert fast.checkpoint == 2.0
        assert base.telemetry is None
        assert base.checkpoint is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig(profile="turbo")

    def test_nonpositive_checkpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            RunConfig(checkpoint=0.0)

    def test_run_rejects_non_shape_input(self):
        with pytest.raises(ConfigurationError):
            run("hars-e", ["swaptions"])


class TestDeprecatedWrappers:
    SHAPE = RunShape(benchmark="swaptions", n_units=40)

    def test_run_single_without_legacy_kwargs_is_quiet(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_single("hars-e", self.SHAPE)
            run_single("hars-e", self.SHAPE, config=RunConfig())

    def test_run_single_legacy_kwarg_warns_but_works(self, xu3):
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            outcome = run_single("hars-e", self.SHAPE, spec=xu3)
        assert outcome.metrics.apps[0].heartbeats == 40

    def test_run_multi_legacy_kwarg_warns_but_works(self):
        shapes = [
            RunShape(benchmark="swaptions", n_units=40,
                     target_fraction=0.5, seed=1),
            RunShape(benchmark="bodytrack", n_units=40,
                     target_fraction=0.5, seed=2),
        ]
        with pytest.warns(DeprecationWarning, match="run_multi"):
            outcome = run_multi("mp-hars-e", shapes, profile="fast")
        assert len(outcome.metrics.apps) == 2

    def test_mixing_config_and_legacy_kwargs_refused(self):
        with pytest.raises(ConfigurationError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                run_single(
                    "hars-e",
                    self.SHAPE,
                    profile="fast",
                    config=RunConfig(),
                )

    def test_legacy_path_matches_runconfig_path(self, xu3):
        with pytest.warns(DeprecationWarning):
            legacy = run_single(
                "hars-e", self.SHAPE, spec=xu3, cache_estimates=False
            )
        modern = run(
            "hars-e",
            self.SHAPE,
            RunConfig(spec=xu3, cache_estimates=False),
        )
        assert dataclasses.asdict(legacy.metrics) == (
            dataclasses.asdict(modern.metrics)
        )


class TestNoLegacyCallersRemain:
    """Repo-wide guard: only this test file may exercise the deprecated
    keyword path; everything else goes through run()/RunConfig."""

    SCAN_DIRS = ("src", "benchmarks", "examples", "tests")

    def _legacy_calls(self, path):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = getattr(func, "attr", None) or getattr(func, "id", None)
            if name not in ("run_single", "run_multi"):
                continue
            legacy = [
                kw.arg
                for kw in node.keywords
                if kw.arg in runner._LEGACY_KWARGS
            ]
            if legacy:
                yield node.lineno, name, legacy

    def test_no_module_uses_legacy_kwargs(self):
        offenders = []
        for directory in self.SCAN_DIRS:
            for path in sorted((REPO_ROOT / directory).rglob("*.py")):
                if path.resolve() == Path(__file__).resolve():
                    continue
                for lineno, name, legacy in self._legacy_calls(path):
                    offenders.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno} "
                        f"{name}({', '.join(legacy)}=...)"
                    )
        assert not offenders, (
            "deprecated run_single/run_multi keywords in:\n"
            + "\n".join(offenders)
        )
