"""Tests for the experiment runner and version registry (small runs)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    RunConfig,
    RunShape,
    build_target,
    clear_max_rate_cache,
    measure_max_rate,
    run,
)
from repro.experiments.versions import (
    MULTI_APP_VERSIONS,
    SINGLE_APP_VERSIONS,
    version_label,
)

#: Small shape shared by the runner tests (kept tiny for speed).
_SHAPE = RunShape("swaptions", n_units=40)


class TestRunShape:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            RunShape("quake")

    def test_bad_target_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            RunShape("swaptions", target_fraction=0.0)


class TestMaxRate:
    def test_measured_and_cached(self, xu3):
        first = measure_max_rate(xu3, _SHAPE)
        second = measure_max_rate(xu3, _SHAPE)
        assert first == second
        assert 1.0 < first < 5.0

    def test_build_target_fraction(self, xu3):
        target = build_target(xu3, _SHAPE)
        max_rate = measure_max_rate(xu3, _SHAPE)
        assert target.avg_rate == pytest.approx(0.5 * max_rate)

    def test_cache_clear(self, xu3):
        measure_max_rate(xu3, _SHAPE)
        clear_max_rate_cache()
        assert measure_max_rate(xu3, _SHAPE) > 0


class TestRunSingle:
    def test_baseline_run(self, xu3):
        outcome = run("baseline", _SHAPE, RunConfig(spec=xu3))
        metrics = outcome.metrics
        assert metrics.version == "baseline"
        assert metrics.apps[0].heartbeats == 40
        assert metrics.avg_power_w > 4.0  # everything maxed
        assert metrics.apps[0].mean_normalized_perf == pytest.approx(1.0)

    def test_hars_run_beats_baseline(self, xu3):
        baseline = run("baseline", _SHAPE, RunConfig(spec=xu3)).metrics
        hars = run("hars-e", _SHAPE, RunConfig(spec=xu3)).metrics
        assert hars.perf_per_watt > 1.5 * baseline.perf_per_watt
        assert hars.final_state != ""
        assert hars.manager_overhead_s > 0

    def test_sweep_version(self, xu3):
        outcome = run("hars-d3", _SHAPE, RunConfig(spec=xu3))
        assert outcome.metrics.version == "hars-d3"

    def test_unknown_version_rejected(self, xu3):
        with pytest.raises(ConfigurationError):
            run("hars-x", _SHAPE, RunConfig(spec=xu3))

    def test_trace_available(self, xu3):
        outcome = run("baseline", _SHAPE, RunConfig(spec=xu3))
        assert len(outcome.trace.points("swaptions")) == 40


class TestRunMulti:
    def test_two_apps_run_to_completion(self, xu3):
        shapes = [
            RunShape("swaptions", n_units=30),
            RunShape("bodytrack", n_units=30),
        ]
        outcome = run("mp-hars-e", shapes, RunConfig(spec=xu3))
        assert len(outcome.metrics.apps) == 2
        for app in outcome.metrics.apps:
            assert app.heartbeats == 30

    def test_app_names_carry_position(self, xu3):
        shapes = [
            RunShape("swaptions", n_units=20),
            RunShape("swaptions", n_units=20),
        ]
        outcome = run("baseline", shapes, RunConfig(spec=xu3))
        names = {a.app_name for a in outcome.metrics.apps}
        assert names == {"swaptions-0", "swaptions-1"}

    def test_empty_shapes_rejected(self, xu3):
        with pytest.raises(ConfigurationError):
            run("baseline", [], RunConfig(spec=xu3))


class TestVersionLabels:
    def test_known_labels(self):
        assert version_label("baseline") == "Baseline"
        assert version_label("hars-ei") == "HARS-EI"
        assert version_label("mp-hars-e") == "MP-HARS-E"
        assert version_label("hars-d5") == "HARS-EI(d=5)"

    def test_registries_cover_paper_versions(self):
        assert SINGLE_APP_VERSIONS == (
            "baseline",
            "so",
            "hars-i",
            "hars-e",
            "hars-ei",
        )
        assert MULTI_APP_VERSIONS == (
            "baseline",
            "cons-i",
            "mp-hars-i",
            "mp-hars-e",
        )


class TestExtraVersions:
    def test_ondemand_single_app_version(self, xu3):
        outcome = run("ondemand", _SHAPE, RunConfig(spec=xu3))
        assert outcome.metrics.apps[0].heartbeats == 40

    def test_mp_hars_ei_multi_version(self, xu3):
        shapes = [
            RunShape("swaptions", n_units=20),
            RunShape("bodytrack", n_units=20),
        ]
        outcome = run("mp-hars-ei", shapes, RunConfig(spec=xu3))
        assert len(outcome.metrics.apps) == 2
        assert version_label("mp-hars-ei") == "MP-HARS-EI"
