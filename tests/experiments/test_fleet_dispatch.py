"""RunConfig fleet dispatch + the ``with_()`` sub-config aliasing fix.

The aliasing regression: ``dataclasses.replace`` copies field
*references*, so two sibling ``RunConfig``s produced by ``with_()``
shared one ``FaultConfig`` — and a mutable lifecycle schedule (a plain
list is accepted where the annotation says tuple) mutated through one
config leaked into the other.  Fleet sweeps fan a single base config out
to many runs, which made this bite immediately.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import RunConfig, RunShape, run
from repro.faults import FaultConfig, LifecycleEvent
from repro.fleet import FleetConfig
from repro.guardrails import GuardrailConfig


class TestWithDeepCopiesSubConfigs:
    def test_unreplaced_subconfigs_are_copies_not_aliases(self):
        base = RunConfig(
            faults=FaultConfig(seed=3),
            guardrails=GuardrailConfig(power_cap_w=6.0),
            fleet=FleetConfig(nodes=3),
        )
        derived = base.with_(profile="vector")
        assert derived.faults == base.faults
        assert derived.faults is not base.faults
        assert derived.guardrails == base.guardrails
        assert derived.guardrails is not base.guardrails
        assert derived.fleet == base.fleet
        assert derived.fleet is not base.fleet

    def test_mutable_schedule_no_longer_leaks_between_siblings(self):
        """The failing-first regression for the aliasing bug."""
        schedule = [LifecycleEvent(kind="app_crash", at_s=5.0)]
        base = RunConfig(
            faults=FaultConfig(lifecycle_schedule=schedule)
        )
        derived = base.with_(profile="vector")
        # Mutating the list behind the *base* config must not change
        # what the derived sibling will inject.
        schedule.append(LifecycleEvent(kind="app_crash", at_s=9.0))
        assert len(base.faults.lifecycle_schedule) == 2
        assert len(derived.faults.lifecycle_schedule) == 1

    def test_replaced_subconfig_is_the_caller_object(self):
        fresh = FaultConfig(seed=9)
        derived = RunConfig(faults=FaultConfig(seed=3)).with_(faults=fresh)
        assert derived.faults is fresh

    def test_none_subconfigs_stay_none(self):
        derived = RunConfig().with_(profile="vector")
        assert derived.faults is None
        assert derived.fleet is None


class TestFleetDispatch:
    def test_run_dispatches_to_fleet_backend(self):
        config = RunConfig(fleet=FleetConfig(nodes=2, requests=60))
        result = run("round-robin", config=config)
        assert result.router == "round-robin"
        assert result.completed == 60

    def test_fleet_run_rejects_shapes(self):
        config = RunConfig(fleet=FleetConfig(nodes=2, requests=10))
        with pytest.raises(ConfigurationError):
            run("round-robin", RunShape(benchmark="swaptions"), config)

    def test_shapeless_run_without_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            run("hars-e", None, RunConfig())

    def test_fleet_run_rejects_unknown_router(self):
        config = RunConfig(fleet=FleetConfig(nodes=2, requests=10))
        with pytest.raises(ConfigurationError):
            run("priority-queue", config=config)
