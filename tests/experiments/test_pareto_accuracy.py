"""Tests for the Pareto-frontier and estimator-accuracy analyses."""

import pytest

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.experiments.accuracy import (
    DEFAULT_SAMPLE,
    evaluate_accuracy,
)
from repro.experiments.pareto import ParetoFrontier, ParetoPoint, build_frontier
from repro.workloads.parsec import make_benchmark


@pytest.fixture(scope="module")
def sw_frontier(xu3):
    return build_frontier(xu3, make_benchmark("SW", n_units=10))


class TestParetoFrontier:
    def test_frontier_is_nondominated_and_sorted(self, sw_frontier):
        points = sw_frontier.points
        assert len(points) >= 5
        for before, after in zip(points, points[1:]):
            assert after.rate > before.rate
            assert after.watts > before.watts  # strictly, by construction

    def test_frontier_much_smaller_than_space(self, xu3, sw_frontier):
        assert len(sw_frontier) < xu3.state_space_size() / 10

    def test_min_watts_monotonic_in_rate(self, sw_frontier):
        low = sw_frontier.min_watts_for_rate(0.5)
        high = sw_frontier.min_watts_for_rate(
            sw_frontier.points[-1].rate
        )
        assert low is not None and high is not None
        assert low <= high

    def test_rate_beyond_platform_is_none(self, sw_frontier):
        assert sw_frontier.min_watts_for_rate(1e9) is None

    def test_excess_power(self, sw_frontier):
        point = sw_frontier.points[len(sw_frontier) // 2]
        # On-frontier points have zero excess.
        assert sw_frontier.excess_power(point.rate, point.watts) == pytest.approx(
            0.0, abs=1e-9
        )
        # A wasteful operator sits above the frontier.
        assert sw_frontier.excess_power(point.rate, point.watts + 1.0) == (
            pytest.approx(1.0)
        )
        # Beating the frontier clamps at zero.
        assert sw_frontier.excess_power(point.rate, 0.0) == 0.0

    def test_excess_ratio(self, sw_frontier):
        point = sw_frontier.points[0]
        ratio = sw_frontier.excess_ratio(point.rate, 2 * point.watts)
        assert ratio == pytest.approx(1.0)

    def test_empty_frontier_rejected(self):
        with pytest.raises(ConfigurationError):
            ParetoFrontier([])

    def test_hars_settles_near_the_frontier(self, xu3, sw_frontier):
        """The point of the analysis: a HARS run's settled operating
        point sits within ~35 % of the oracle frontier."""
        from repro.experiments.runner import RunConfig, RunShape, run

        metrics = run(
            "hars-e", RunShape("swaptions", n_units=60), RunConfig(spec=xu3)
        ).metrics
        rate = metrics.apps[0].overall_rate
        excess = sw_frontier.excess_ratio(rate, metrics.avg_power_w)
        assert excess is not None
        assert excess < 0.35


class TestAccuracy:
    @pytest.fixture(scope="class")
    def report(self, xu3, power_estimator):
        return evaluate_accuracy(
            xu3,
            lambda: make_benchmark("bodytrack", n_units=25),
            "bodytrack",
            PerformanceEstimator(),
            power_estimator,
            states=DEFAULT_SAMPLE[:4],
            probe_units=25,
        )

    def test_reference_predicts_itself(self, report):
        # The first sampled state is the reference: zero transfer error.
        assert report.rows[0].rate_error == pytest.approx(0.0, abs=1e-6)

    def test_rate_mape_is_modest(self, report):
        # The estimator's assumptions (fixed r0, equal split) keep it
        # within a few tens of percent — good enough to rank states,
        # which is all the search needs.
        assert report.rate_mape < 0.30

    def test_power_mape_is_modest(self, report):
        assert report.power_mape < 0.30

    def test_render(self, report):
        text = report.render()
        assert "MAPE" in text
        assert "bodytrack" in text

    def test_empty_states_rejected(self, xu3, power_estimator):
        with pytest.raises(ConfigurationError):
            evaluate_accuracy(
                xu3,
                lambda: make_benchmark("SW", n_units=10),
                "swaptions",
                PerformanceEstimator(),
                power_estimator,
                states=(),
            )
