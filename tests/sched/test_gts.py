"""Behavioural tests for the GTS scheduler model."""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.sched.gts import GtsScheduler
from repro.sched.load_tracking import preferred_cluster, validate_thresholds
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.microbench import MicrobenchWorkload
from repro.workloads.phases import ConstantProfile


def _hungry_app(name="hungry", n_threads=8):
    model = DataParallelWorkload(
        WorkloadTraits(name=name), n_threads, ConstantProfile(50.0), 50
    )
    return SimApp(name, model, PerformanceTarget(1.0, 1.0, 1.0))


class TestLoadTracking:
    def test_preferred_cluster_thresholds(self):
        assert preferred_cluster(0.9, LITTLE, 0.8, 0.25) == BIG
        assert preferred_cluster(0.1, BIG, 0.8, 0.25) == LITTLE
        # Hysteresis zone: stay put.
        assert preferred_cluster(0.5, BIG, 0.8, 0.25) == BIG
        assert preferred_cluster(0.5, LITTLE, 0.8, 0.25) == LITTLE

    def test_threshold_validation(self):
        validate_thresholds(0.8, 0.25)
        with pytest.raises(ConfigurationError):
            validate_thresholds(0.25, 0.8)
        with pytest.raises(ConfigurationError):
            validate_thresholds(1.5, 0.2)

    def test_scheduler_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            GtsScheduler(up_threshold=0.2, down_threshold=0.8)


class TestGtsPathology:
    def test_hungry_threads_crowd_the_big_cluster(self, xu3):
        """The baseline pathology from Section 4.1.1: CPU-intensive
        threads all migrate to the big cluster and time-share it while
        the little cores idle."""
        sim = Simulation(xu3)
        app = sim.add_app(_hungry_app())
        for _ in range(300):  # 3 s
            sim.step()
        cores = app.cores_in_use()
        assert set(cores) == {4, 5, 6, 7}

    def test_light_threads_sink_to_little(self, xu3):
        sim = Simulation(xu3)
        app = SimApp(
            "light",
            MicrobenchWorkload(n_threads=2, duty=0.05),
            PerformanceTarget(1.0, 1.0, 1.0),
        )
        sim.add_app(app)
        for _ in range(500):
            sim.step()
        # Duty 5% keeps utilization far below the down threshold.
        assert all(t.load < 0.25 for t in app.threads)
        assert set(app.cores_in_use()) <= {0, 1, 2, 3}

    def test_affinity_overrides_migration(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_hungry_app(n_threads=2))
        for thread in app.threads:
            thread.set_affinity(frozenset({0, 1}))
        for _ in range(200):
            sim.step()
        assert set(app.cores_in_use()) <= {0, 1}

    def test_threads_spread_within_cluster(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_hungry_app(n_threads=4))
        for _ in range(200):
            sim.step()
        # Four hungry threads on four big cores: one each.
        assert app.cores_in_use() == (4, 5, 6, 7)

    def test_cpuset_respected(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_hungry_app(n_threads=4))
        app.set_cpuset(frozenset({4, 5}))
        for _ in range(200):
            sim.step()
        assert set(app.cores_in_use()) <= {4, 5}

    def test_placement_is_sticky(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_hungry_app(n_threads=4))
        for _ in range(100):
            sim.step()
        before = {t.local_index: t.current_core for t in app.threads}
        for _ in range(50):
            sim.step()
        after = {t.local_index: t.current_core for t in app.threads}
        assert before == after
