"""Shared fixtures for the test suite.

Expensive artefacts (the calibrated power estimator, measured max rates)
are session-scoped; everything else is rebuilt per test for isolation.
"""

from __future__ import annotations

import pytest

from repro.core.calibration import calibrate
from repro.platform.spec import odroid_xu3, small_test_platform


@pytest.fixture(scope="session")
def xu3():
    """The paper's evaluation platform."""
    return odroid_xu3()


@pytest.fixture(scope="session")
def small_spec():
    """A 2+2-core platform for cheap sweeps."""
    return small_test_platform()


@pytest.fixture(scope="session")
def power_estimator(xu3):
    """Fitted linear power estimator for the XU3 (calibrated once)."""
    return calibrate(xu3)
