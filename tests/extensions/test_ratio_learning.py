"""Unit tests for online big:little ratio learning."""

import pytest

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.state import SystemState
from repro.errors import ConfigurationError
from repro.extensions.ratio_learning import OnlineRatioLearner


def _feed_observations(learner, true_ratio, states, scale=0.5, n_threads=8):
    """Generate rates from a ground-truth ratio and feed the learner.

    Each observation carries the split the oracle actually used, as the
    manager's bookkeeping does.
    """
    oracle = PerformanceEstimator(r0=true_ratio)
    for state in states:
        estimate = oracle.estimate(state, n_threads)
        learner.observe(
            state, scale * estimate.capacity, n_threads, estimate.assignment
        )


_STATES = [
    SystemState(4, 0, 1200, 800),
    SystemState(0, 4, 800, 1200),
    SystemState(2, 2, 1000, 1000),
    SystemState(4, 4, 1600, 1300),
    SystemState(1, 4, 1400, 1100),
]


class TestLearning:
    def test_defaults_to_r0_without_data(self):
        learner = OnlineRatioLearner()
        assert learner.ratio == 1.5

    def test_recovers_blackscholes_ratio(self):
        """The paper's case: true ratio 1.0, assumed 1.5."""
        learner = OnlineRatioLearner()
        _feed_observations(learner, true_ratio=1.0, states=_STATES)
        assert learner.ratio == pytest.approx(1.0, abs=0.051)

    def test_recovers_wide_ratio(self):
        learner = OnlineRatioLearner()
        _feed_observations(learner, true_ratio=2.0, states=_STATES)
        assert learner.ratio == pytest.approx(2.0, abs=0.051)

    def test_little_only_observations_are_uninformative(self):
        learner = OnlineRatioLearner()
        _feed_observations(
            learner,
            true_ratio=1.0,
            states=[SystemState(0, 4, 800, 1000), SystemState(0, 4, 800, 1200)],
        )
        # No big-cluster data: stays at the prior.
        assert learner.ratio == 1.5

    def test_estimator_uses_learned_ratio(self):
        learner = OnlineRatioLearner()
        _feed_observations(learner, true_ratio=1.0, states=_STATES)
        estimator = learner.estimator()
        s_big, s_little = estimator.per_core_speeds(
            SystemState(1, 1, 1000, 1000)
        )
        assert s_big / s_little == pytest.approx(learner.ratio)

    def test_window_bounds_history(self):
        learner = OnlineRatioLearner(window=4)
        _feed_observations(learner, true_ratio=1.5, states=_STATES * 3)
        assert len(learner) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineRatioLearner(grid=())
        with pytest.raises(ConfigurationError):
            OnlineRatioLearner(window=1)
        learner = OnlineRatioLearner()
        with pytest.raises(ConfigurationError):
            learner.observe(SystemState(1, 1, 800, 800), 0.0, 8)

    def test_noisy_observations_still_converge(self):
        import numpy as np

        rng = np.random.default_rng(3)
        learner = OnlineRatioLearner()
        oracle = PerformanceEstimator(r0=1.0)
        for state in _STATES * 2:
            estimate = oracle.estimate(state, 8)
            rate = 0.5 * estimate.capacity
            learner.observe(
                state,
                rate * (1 + 0.03 * rng.standard_normal()),
                8,
                estimate.assignment,
            )
        assert learner.ratio == pytest.approx(1.0, abs=0.15)
