"""Unit tests for the stuck detector, full-space escape and stage-aware split."""

import pytest

from repro.core.state import SystemState
from repro.errors import ConfigurationError, SchedulingError
from repro.extensions.escape import StuckDetector, full_space
from repro.extensions.stage_aware import stage_aware_split


class TestFullSpace:
    def test_covers_entire_space(self, xu3):
        space = full_space(xu3)
        assert space.m >= 4 and space.n >= 4
        # Max Manhattan distance across the XU3 space is 4+4+8+5 = 21.
        assert space.d >= 21


class TestStuckDetector:
    def test_fires_after_threshold_fruitless_periods(self):
        detector = StuckDetector(threshold=3)
        state = SystemState(1, 1, 800, 800)
        assert not detector.note_out_of_window(state)
        assert not detector.note_out_of_window(state)
        assert detector.note_out_of_window(state)

    def test_state_change_resets(self):
        detector = StuckDetector(threshold=2)
        a = SystemState(1, 1, 800, 800)
        b = SystemState(2, 1, 800, 800)
        assert not detector.note_out_of_window(a)
        assert not detector.note_out_of_window(b)  # moved: streak restarts
        assert detector.note_out_of_window(b)

    def test_in_window_resets(self):
        detector = StuckDetector(threshold=2)
        state = SystemState(1, 1, 800, 800)
        detector.note_out_of_window(state)
        detector.note_in_window(state)
        assert not detector.note_out_of_window(state)

    def test_fires_once_per_episode(self):
        detector = StuckDetector(threshold=2)
        state = SystemState(1, 1, 800, 800)
        detector.note_out_of_window(state)
        assert detector.note_out_of_window(state)
        # Counter reset: needs a fresh streak to fire again.
        assert not detector.note_out_of_window(state)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StuckDetector(threshold=0)


class TestStageAwareSplit:
    def test_total_big_count_exact(self):
        stages = [0] + [1] * 8 + [2] * 8 + [3] * 8 + [4] * 8 + [5]
        for t_big in range(len(stages) + 1):
            flags = stage_aware_split(stages, t_big)
            assert sum(flags) == t_big

    def test_each_stage_gets_proportional_share(self):
        stages = [0] * 4 + [1] * 4  # two equal stages
        flags = stage_aware_split(stages, t_big=4)
        big_in_stage0 = sum(flags[:4])
        big_in_stage1 = sum(flags[4:])
        assert big_in_stage0 == big_in_stage1 == 2

    def test_uneven_stages_within_one_thread_of_proportional(self):
        stages = [0] * 2 + [1] * 6
        flags = stage_aware_split(stages, t_big=4)
        big_stage0 = sum(flags[:2])
        big_stage1 = sum(flags[2:])
        assert abs(big_stage0 - 2 * 4 / 8) <= 1
        assert abs(big_stage1 - 6 * 4 / 8) <= 1

    def test_all_or_none(self):
        stages = [0, 0, 1, 1]
        assert stage_aware_split(stages, 0) == [False] * 4
        assert stage_aware_split(stages, 4) == [True] * 4

    def test_validation(self):
        with pytest.raises(SchedulingError):
            stage_aware_split([], 0)
        with pytest.raises(SchedulingError):
            stage_aware_split([0, 1], 3)
