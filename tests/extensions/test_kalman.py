"""Unit tests for the Kalman workload predictor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.extensions.kalman import RatePredictor, ScalarKalmanFilter


class TestScalarKalmanFilter:
    def _filter(self, q=0.01, r=0.1):
        return ScalarKalmanFilter(process_variance=q, measurement_variance=r)

    def test_first_measurement_initializes(self):
        kf = self._filter()
        assert kf.update(2.0) == 2.0
        assert kf.estimate == 2.0

    def test_converges_to_constant_signal(self):
        kf = self._filter()
        for _ in range(100):
            estimate = kf.update(3.0)
        assert estimate == pytest.approx(3.0)

    def test_smooths_noise(self):
        rng = np.random.default_rng(7)
        kf = self._filter(q=0.001, r=0.5)
        measurements = 2.0 + 0.5 * rng.standard_normal(300)
        estimates = [kf.update(max(0.0, m)) for m in measurements]
        tail = np.array(estimates[100:])
        # The filtered series is much tighter than the raw one.
        assert tail.std() < 0.5 * np.array(measurements[100:]).std()
        assert tail.mean() == pytest.approx(2.0, abs=0.2)

    def test_tracks_step_change(self):
        kf = self._filter(q=0.05, r=0.1)
        for _ in range(20):
            kf.update(1.0)
        for _ in range(40):
            estimate = kf.update(2.0)
        assert estimate == pytest.approx(2.0, abs=0.1)

    def test_gain_between_zero_and_one(self):
        kf = self._filter()
        kf.update(1.0)
        assert 0.0 < kf.gain < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScalarKalmanFilter(process_variance=0.0, measurement_variance=0.1)
        kf = self._filter()
        with pytest.raises(ConfigurationError):
            kf.update(-1.0)


class TestRatePredictor:
    def test_observe_and_estimate(self):
        predictor = RatePredictor()
        predictor.observe(2.0)
        predictor.observe(2.2)
        assert 1.9 < predictor.estimate < 2.2

    def test_reset_forgets_history(self):
        predictor = RatePredictor()
        predictor.observe(2.0)
        predictor.reset()
        assert predictor.estimate is None
        assert predictor.observe(5.0) == 5.0

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            RatePredictor().observe(0.0)

    def test_noise_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            RatePredictor(relative_process_noise=0.0)
