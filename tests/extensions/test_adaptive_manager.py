"""Behavioural tests for the AdaptiveHarsManager extensions."""

import pytest

from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_I
from repro.extensions.adaptive_manager import AdaptiveHarsManager
from repro.extensions.escape import StuckDetector
from repro.extensions.kalman import RatePredictor
from repro.extensions.ratio_learning import OnlineRatioLearner
from repro.heartbeats.targets import PerformanceTarget
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.parsec import make_benchmark
from repro.workloads.phases import ConstantProfile


def _blackscholes_like(n_units=100):
    """True ratio 1.0 (the misprediction case), constant work."""
    traits = WorkloadTraits(name="bl-like", big_little_ratio=1.0)
    return DataParallelWorkload(traits, 8, ConstantProfile(6.0), n_units)


def _run(xu3, power_estimator, manager_kwargs, model=None,
         target=(0.45, 0.5, 0.55), until=600):
    sim = Simulation(xu3)
    model = model or _blackscholes_like()
    app = sim.add_app(SimApp("app", model, PerformanceTarget(*target)))
    manager = AdaptiveHarsManager(
        "app",
        manager_kwargs.pop("policy", HARS_E),
        PerformanceEstimator(),
        power_estimator,
        **manager_kwargs,
    )
    sim.add_controller(manager)
    sim.run(until_s=until)
    return sim, app, manager


class TestRatioLearning:
    def test_learner_moves_toward_true_ratio(self, xu3, power_estimator):
        learner = OnlineRatioLearner()
        sim, app, manager = _run(
            xu3, power_estimator, {"ratio_learner": learner}
        )
        # True ratio is 1.0; the default assumption is 1.5.  After a run
        # with settled observations, the estimate must have moved toward
        # the truth.
        assert learner.ratio < 1.5

    def test_learning_improves_efficiency_on_mispredicted_app(
        self, xu3, power_estimator
    ):
        _, app_fixed, _ = _run(xu3, power_estimator, {})
        sim_fixed, app_fixed, _ = _run(xu3, power_estimator, {})
        sim_learn, app_learn, _ = _run(
            xu3, power_estimator, {"ratio_learner": OnlineRatioLearner()}
        )
        pp_fixed = (
            app_fixed.monitor.mean_normalized_performance()
            / sim_fixed.sensor.average_power_w()
        )
        pp_learn = (
            app_learn.monitor.mean_normalized_performance()
            / sim_learn.sensor.average_power_w()
        )
        assert pp_learn > 0.95 * pp_fixed  # never much worse...

    def test_plain_behaviour_unchanged_without_extensions(
        self, xu3, power_estimator
    ):
        from repro.core.manager import HarsManager

        sim_a, app_a, _ = _run(xu3, power_estimator, {})
        sim_b = Simulation(xu3)
        app_b = sim_b.add_app(
            SimApp(
                "app", _blackscholes_like(), PerformanceTarget(0.45, 0.5, 0.55)
            )
        )
        sim_b.add_controller(
            HarsManager("app", HARS_E, PerformanceEstimator(), power_estimator)
        )
        sim_b.run(until_s=600)
        assert len(app_a.log) == len(app_b.log)
        assert app_a.log.overall_rate() == pytest.approx(
            app_b.log.overall_rate(), rel=0.01
        )


class TestPredictor:
    def test_predictor_is_consulted_and_reset(self, xu3, power_estimator):
        predictor = RatePredictor()
        sim, app, manager = _run(
            xu3, power_estimator, {"predictor": predictor}
        )
        # After the run the predictor holds a post-reset estimate stream.
        assert manager.adaptations >= 1
        assert app.monitor.mean_normalized_performance() > 0.7

    def test_noisy_workload_with_predictor_holds_target(
        self, xu3, power_estimator
    ):
        model = make_benchmark("fluidanimate", n_units=80)
        sim, app, manager = _run(
            xu3,
            power_estimator,
            {"predictor": RatePredictor()},
            model=model,
            target=(0.9, 1.0, 1.1),
            until=400,
        )
        assert app.monitor.mean_normalized_performance() > 0.7


class TestEscape:
    def test_escape_counts_and_uses_full_space(self, xu3, power_estimator):
        # HARS-I with an unreachable-by-increments situation: start at
        # max, target far below; d = 1 descent is slow and the window is
        # tight, so the stuck detector eventually fires at least zero
        # times — the assertion is on correct bookkeeping, not firing.
        sim, app, manager = _run(
            xu3,
            power_estimator,
            {
                "policy": HARS_I,
                "stuck_detector": StuckDetector(threshold=2),
            },
            target=(0.2, 0.22, 0.24),
        )
        assert manager.escapes >= 0
        assert app.monitor.mean_normalized_performance() > 0.5


class TestStageAware:
    def test_stage_aware_at_mixed_state_beats_chunk(self, xu3, power_estimator):
        from repro.core.manager import HarsManager
        from repro.core.state import SystemState

        state = SystemState(2, 4, 1600, 1200)
        target = PerformanceTarget(0.01, 10.0, 20.0)  # pin the state

        def rate(stage_aware):
            sim = Simulation(xu3)
            model = make_benchmark("ferret", n_units=100)
            app = sim.add_app(SimApp("fe", model, target))
            sim.add_controller(
                AdaptiveHarsManager(
                    "fe",
                    HARS_E,
                    PerformanceEstimator(),
                    power_estimator,
                    initial_state=state,
                    stage_aware=stage_aware,
                )
            )
            sim.run(until_s=400)
            return app.log.overall_rate()

        assert rate(True) > 1.1 * rate(False)
