"""Conservation and determinism invariants of the simulation engine."""

import pytest

from repro.core.calibration import calibrate
from repro.core.manager import HarsManager
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.parsec import make_benchmark
from repro.workloads.phases import ConstantProfile, NoisyProfile


def _app(name="w", n_units=30, unit_work=4.0, sigma=0.0, n_threads=8):
    profile = ConstantProfile(unit_work)
    if sigma:
        profile = NoisyProfile(profile, sigma=sigma)
    model = DataParallelWorkload(
        WorkloadTraits(name=name, big_little_ratio=1.5),
        n_threads,
        profile,
        n_units,
    )
    return SimApp(name, model, PerformanceTarget(0.45, 0.5, 0.55))


class TestWorkConservation:
    def test_completed_work_matches_profile(self, xu3):
        """Total work executed equals the sum of the unit sizes."""
        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=20, unit_work=4.0))
        sim.run(until_s=200)
        # Completion time × aggregate delivered capacity ≥ total work,
        # and exactly n_units heartbeats fired.
        assert len(app.log) == 20

    def test_energy_equals_power_integral(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_app())
        sim.run(until_s=100)
        sensor = sim.sensor
        assert sensor.energy_j("total") == pytest.approx(
            sensor.average_power_w("total") * sensor.elapsed_s
        )
        assert sensor.energy_j("total") == pytest.approx(
            sensor.energy_j(BIG)
            + sensor.energy_j(LITTLE)
            + sensor.energy_j("board")
        )

    def test_throughput_never_exceeds_platform_capacity(self, xu3):
        """An app cannot complete work faster than every core at maximum
        frequency could deliver it."""
        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=25, unit_work=4.0))
        elapsed = sim.run(until_s=200)
        model = app.model
        max_speed_big = model.thread_speed(BIG, xu3.big.core_type, 1600)
        max_speed_little = model.thread_speed(LITTLE, xu3.little.core_type, 1300)
        capacity = 4 * max_speed_big + 4 * max_speed_little
        total_work = 25 * 4.0
        assert total_work <= capacity * elapsed * 1.001


class TestDeterminism:
    def _run_fingerprint(self, seed=7):
        spec_sim = Simulation.__module__  # silence lint unused
        from repro.platform.spec import odroid_xu3

        spec = odroid_xu3()
        sim = Simulation(spec)
        model = make_benchmark("fluidanimate", n_units=40)
        model.reset(seed)
        app = sim.add_app(
            SimApp("fl", model, PerformanceTarget(0.9, 1.0, 1.1))
        )
        manager = HarsManager(
            "fl", HARS_E, PerformanceEstimator(), calibrate(spec)
        )
        sim.add_controller(manager)
        sim.run(until_s=300)
        return (
            tuple(round(b.time_s, 9) for b in app.log.beats),
            round(sim.sensor.energy_j(), 9),
            manager.state,
            manager.states_explored_total,
        )

    def test_identical_seeds_identical_runs(self):
        assert self._run_fingerprint(seed=3) == self._run_fingerprint(seed=3)

    def test_different_seeds_differ(self):
        a = self._run_fingerprint(seed=3)
        b = self._run_fingerprint(seed=4)
        assert a[0] != b[0]


class TestThreeApps:
    def test_mp_hars_with_three_apps(self, xu3, power_estimator):
        """MP-HARS generalizes beyond the paper's two-app cases."""
        from repro.mphars.manager import MpHarsManager

        sim = Simulation(xu3)
        apps = [
            sim.add_app(
                _app(name=f"a{i}", n_units=30, unit_work=6.0)
            )
            for i in range(3)
        ]
        manager = MpHarsManager(
            HARS_E, PerformanceEstimator(), power_estimator
        )
        sim.add_controller(manager)
        sim.run(until_s=900)
        for app in apps:
            assert app.is_done()
        # Ownership stayed disjoint across all three.
        for slot in range(4):
            big_owners = sum(
                manager._apps[f"a{i}"].use_b_core[slot] for i in range(3)
            )
            little_owners = sum(
                manager._apps[f"a{i}"].use_l_core[slot] for i in range(3)
            )
            assert big_owners <= 1 and little_owners <= 1
