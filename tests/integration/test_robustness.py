"""Robustness and generality integration tests.

Beyond the paper's happy path: odd thread counts, tiny platforms,
external interference with the manager's DVFS settings, and single-core
corners.
"""

import pytest

from repro.core.calibration import calibrate
from repro.core.manager import HarsManager
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E, HARS_I
from repro.core.state import SystemState
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG
from repro.sim.controller import Controller
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile


def _app(n_threads=8, n_units=40, unit_work=6.0, target=(0.45, 0.5, 0.55)):
    model = DataParallelWorkload(
        WorkloadTraits(name="w", big_little_ratio=1.5),
        n_threads,
        ConstantProfile(unit_work),
        n_units,
    )
    return SimApp("w", model, PerformanceTarget(*target))


def _manage(sim, app, power_estimator, policy=HARS_E, **kwargs):
    manager = HarsManager(
        app.name, policy, PerformanceEstimator(), power_estimator, **kwargs
    )
    sim.add_controller(manager)
    return manager


class TestThreadCounts:
    @pytest.mark.parametrize("n_threads", [1, 3, 5, 13])
    def test_odd_thread_counts_complete(self, xu3, power_estimator, n_threads):
        sim = Simulation(xu3)
        app = sim.add_app(_app(n_threads=n_threads, n_units=25))
        _manage(sim, app, power_estimator)
        sim.run(until_s=600)
        assert app.is_done()
        assert len(app.log) == 25

    def test_single_thread_app_adapts(self, xu3, power_estimator):
        sim = Simulation(xu3)
        app = sim.add_app(
            _app(n_threads=1, n_units=30, unit_work=1.2, target=(0.4, 0.5, 0.6))
        )
        manager = _manage(sim, app, power_estimator)
        sim.run(until_s=600)
        assert app.is_done()
        assert manager.adaptations >= 1


class TestSmallPlatform:
    def test_hars_runs_on_2plus2(self, small_spec):
        power = calibrate(small_spec)
        sim = Simulation(small_spec)
        app = sim.add_app(_app(n_threads=4, n_units=30, unit_work=3.0))
        _manage(sim, app, power)
        sim.run(until_s=600)
        assert app.is_done()

    def test_state_space_is_reachable(self, small_spec):
        # The exhaustive box covers the whole 2+2 platform space.
        from repro.core.state import max_state, neighbourhood

        states = set(
            neighbourhood(small_spec, max_state(small_spec), 4, 4, 20)
        )
        assert len(states) == small_spec.state_space_size()


class TestExternalInterference:
    def test_manager_recovers_from_external_dvfs_writes(
        self, xu3, power_estimator
    ):
        """Another agent (e.g. a thermal governor) keeps dropping the big
        frequency; HARS notices the rate change and re-adapts."""

        class ThermalGovernor(Controller):
            def __init__(self):
                self.kicks = 0

            def on_tick(self, sim):
                # Every ~20 s, force the big cluster to 800 MHz.
                if int(sim.clock.now_s * 100) % 2000 == 0 and sim.clock.now_s > 1:
                    sim.dvfs.set_frequency(BIG, 800)
                    self.kicks += 1

        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=60, target=(0.55, 0.6, 0.65)))
        governor = ThermalGovernor()
        sim.add_controller(governor)
        _manage(sim, app, power_estimator)
        sim.run(until_s=900)
        assert app.is_done()
        assert governor.kicks > 0
        # Despite the interference the app stays broadly on target.
        assert app.monitor.mean_normalized_performance() > 0.6

    def test_two_managers_for_two_apps_coexist(self, xu3, power_estimator):
        """Two independent single-app HARS instances (not MP-HARS) fight
        over the shared frequencies but neither crashes; this is the
        naive-model failure mode of Section 4.1.1 running safely."""
        sim = Simulation(xu3)
        a = sim.add_app(_app(n_units=25))
        b_model = DataParallelWorkload(
            WorkloadTraits(name="b", big_little_ratio=1.5),
            8,
            ConstantProfile(6.0),
            25,
        )
        b = sim.add_app(SimApp("b", b_model, PerformanceTarget(0.45, 0.5, 0.55)))
        _manage(sim, a, power_estimator)
        manager_b = HarsManager(
            "b", HARS_I, PerformanceEstimator(), power_estimator
        )
        sim.add_controller(manager_b)
        sim.run(until_s=900)
        assert a.is_done() and b.is_done()


class TestManagerCorners:
    def test_initial_state_single_little_core(self, xu3, power_estimator):
        sim = Simulation(xu3)
        app = sim.add_app(_app(n_units=20, target=(0.05, 0.1, 0.15)))
        manager = _manage(
            sim,
            app,
            power_estimator,
            initial_state=SystemState(0, 1, 800, 800),
        )
        sim.run(until_s=2400)
        assert app.is_done()

    def test_unreachable_target_still_terminates(self, xu3, power_estimator):
        sim = Simulation(xu3)
        # Target far above anything the platform can deliver.
        app = sim.add_app(_app(n_units=30, target=(50.0, 55.0, 60.0)))
        manager = _manage(sim, app, power_estimator)
        sim.run(until_s=600)
        assert app.is_done()
        # The search settles on a state whose *estimated* capacity
        # matches the fastest state's (estimated rates tie when the
        # little cluster binds the barrier; ties break toward the
        # cheaper state).
        from repro.core.state import max_state

        estimator = manager.perf_estimator
        best_cap = estimator.estimate(max_state(xu3), app.n_threads).capacity
        final_cap = estimator.estimate(manager.state, app.n_threads).capacity
        assert final_cap == pytest.approx(best_cap, rel=1e-6)
