"""Full-stack scenario tests combining several subsystems at once."""

import pytest

from repro.core.calibration import calibrate
from repro.core.perf_estimator import PerformanceEstimator
from repro.core.policy import HARS_E
from repro.extensions.adaptive_manager import AdaptiveHarsManager
from repro.extensions.kalman import RatePredictor
from repro.extensions.ratio_learning import OnlineRatioLearner
from repro.heartbeats.targets import PerformanceTarget
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.extra import make_extra_benchmark
from repro.workloads.phases import (
    ConstantProfile,
    NoisyProfile,
    StepProfile,
    record_profile,
)


class TestTraceReplayUnderHars:
    def test_recorded_trace_reproduces_the_noisy_run(self, xu3, power_estimator):
        """Record a noisy profile into a trace and replay it: the replay
        run is identical to the original, seed-independent."""
        noisy = NoisyProfile(
            StepProfile(segments=((20, 5.0), (20, 7.0))), sigma=0.1
        )
        trace = record_profile(noisy, n_units=40, seed=11)

        def run(profile, seed):
            sim = Simulation(xu3)
            model = DataParallelWorkload(
                WorkloadTraits(name="t", big_little_ratio=1.5),
                8,
                profile,
                40,
            )
            model.reset(seed)
            app = sim.add_app(
                SimApp("t", model, PerformanceTarget(0.45, 0.5, 0.55))
            )
            sim.add_controller(
                AdaptiveHarsManager(
                    "t", HARS_E, PerformanceEstimator(), power_estimator
                )
            )
            sim.run(until_s=600)
            return tuple(b.time_s for b in app.log.beats)

        original = run(noisy, seed=11)
        replayed_any_seed = run(trace, seed=999)
        assert original == replayed_any_seed


class TestExtensionsOnExtraWorkloads:
    def test_x264_stage_aware_beats_plain_on_uneven_pipeline(
        self, xu3, power_estimator
    ):
        """x264's stage widths (1/14/4) are exactly the case ID-based
        interleaving misjudges and stage-aware placement fixes."""
        from repro.core.state import SystemState
        from repro.core.policy import HARS_EI

        state = SystemState(2, 4, 1600, 1200)
        target = PerformanceTarget(0.01, 50.0, 60.0)  # pin the state

        def rate(policy, stage_aware):
            sim = Simulation(xu3)
            model = make_extra_benchmark("x264", n_units=80)
            app = sim.add_app(SimApp("x", model, target))
            sim.add_controller(
                AdaptiveHarsManager(
                    "x",
                    policy,
                    PerformanceEstimator(),
                    power_estimator,
                    initial_state=state,
                    stage_aware=stage_aware,
                )
            )
            sim.run(until_s=400)
            result = app.log.overall_rate()
            assert result is not None
            return result

        interleaved = rate(HARS_EI, stage_aware=False)
        stage_aware = rate(HARS_E, stage_aware=True)
        # Stage-aware is at least as good as ID-interleaving here.
        assert stage_aware >= 0.97 * interleaved

    def test_adaptive_manager_full_stack_on_canneal(
        self, xu3, power_estimator
    ):
        """Every extension enabled at once on an annealing-profile
        workload: the run completes and holds its target."""
        sim = Simulation(xu3)
        model = make_extra_benchmark("canneal", n_units=60)
        # Probe max rate quickly via a baseline run.
        probe = Simulation(xu3)
        probe_app = probe.add_app(
            SimApp(
                "c",
                make_extra_benchmark("canneal", n_units=30),
                PerformanceTarget(1.0, 1.0, 1.0),
            )
        )
        probe.run(until_s=120)
        target = PerformanceTarget.fraction_of(
            probe_app.log.overall_rate(), 0.5
        )
        app = sim.add_app(SimApp("c", model, target))
        from repro.extensions.escape import StuckDetector

        manager = AdaptiveHarsManager(
            "c",
            HARS_E,
            PerformanceEstimator(),
            power_estimator,
            predictor=RatePredictor(),
            ratio_learner=OnlineRatioLearner(),
            stuck_detector=StuckDetector(),
        )
        sim.add_controller(manager)
        sim.run(until_s=600)
        assert app.is_done()
        assert app.monitor.mean_normalized_performance() > 0.75
        assert sim.sensor.average_power_w() < 4.0
