"""Integration tests: the paper's qualitative findings on scaled-down runs.

These runs use ~60–80 heartbeats per benchmark (the native inputs use
150–500) so the whole module stays in tens of seconds; the benchmark
harness regenerates the full-size figures.
"""

import pytest

from repro.experiments.fig5_1 import run_perf_watt_comparison
from repro.experiments.runner import RunConfig, RunShape, run

_UNITS = 70


@pytest.fixture(scope="module")
def swaptions_grid(xu3):
    """Baseline + HARS versions for one benchmark, shared by tests."""
    shape = RunShape("swaptions", n_units=_UNITS)
    return {
        version: run(version, shape, RunConfig(spec=xu3)).metrics
        for version in ("baseline", "so", "hars-i", "hars-e")
    }


class TestFig51Findings:
    def test_baseline_is_least_efficient(self, swaptions_grid):
        baseline = swaptions_grid["baseline"].perf_per_watt
        for version in ("so", "hars-i", "hars-e"):
            assert swaptions_grid[version].perf_per_watt > 1.5 * baseline

    def test_hars_e_beats_hars_i(self, swaptions_grid):
        assert (
            swaptions_grid["hars-e"].perf_per_watt
            > swaptions_grid["hars-i"].perf_per_watt
        )

    def test_hars_e_comparable_to_static_optimal(self, swaptions_grid):
        ratio = (
            swaptions_grid["hars-e"].perf_per_watt
            / swaptions_grid["so"].perf_per_watt
        )
        assert 0.7 < ratio < 1.3

    def test_blackscholes_r0_misprediction_favours_so(self, xu3):
        """The paper: HARS assumes r0 = 1.5 but blackscholes measures
        1.0, so SO largely outperforms HARS on it."""
        shape = RunShape("blackscholes", n_units=_UNITS)
        so = run("so", shape, RunConfig(spec=xu3)).metrics
        hars = run("hars-e", shape, RunConfig(spec=xu3)).metrics
        assert so.perf_per_watt > 1.1 * hars.perf_per_watt

    def test_interleaving_helps_ferret_at_mixed_states(self, xu3):
        """The Figure 3.2 mechanism, isolated: hold a mixed big+little
        allocation fixed and compare the two thread schedulers.  The
        chunk mapping puts whole pipeline stages on the little cluster
        and throttles the pipeline; interleaving spreads each stage over
        both clusters and runs measurably faster."""
        from repro.core.manager import HarsManager
        from repro.core.perf_estimator import PerformanceEstimator
        from repro.core.policy import HARS_E, HARS_EI
        from repro.core.calibration import calibrate
        from repro.core.state import SystemState
        from repro.heartbeats.targets import PerformanceTarget
        from repro.sim.engine import Simulation
        from repro.sim.process import SimApp
        from repro.workloads.parsec import make_benchmark

        def rate_with(policy):
            sim = Simulation(xu3)
            model = make_benchmark("ferret", n_units=100)
            # A huge window keeps the manager from ever adapting away
            # from the pinned mixed state.
            app = sim.add_app(
                SimApp("fe", model, PerformanceTarget(0.01, 10.0, 20.0))
            )
            manager = HarsManager(
                "fe",
                policy,
                PerformanceEstimator(),
                calibrate(xu3),
                initial_state=SystemState(2, 4, 1200, 1200),
            )
            sim.add_controller(manager)
            sim.run(until_s=400)
            return app.log.overall_rate()

        chunk_rate = rate_with(HARS_E)
        interleaved_rate = rate_with(HARS_EI)
        assert interleaved_rate > 1.05 * chunk_rate


class TestFig52Finding:
    def test_high_target_compresses_gains(self, xu3):
        """Figure 5.2: gains over the baseline shrink at the 75 % target."""
        shape_default = RunShape("bodytrack", n_units=_UNITS, target_fraction=0.5)
        shape_high = RunShape("bodytrack", n_units=_UNITS, target_fraction=0.75)

        def gain(shape):
            base = run("baseline", shape, RunConfig(spec=xu3)).metrics.perf_per_watt
            hars = run("hars-e", shape, RunConfig(spec=xu3)).metrics.perf_per_watt
            return hars / base

        assert gain(shape_high) < gain(shape_default)


class TestFig53Finding:
    def test_larger_distance_explores_more_and_costs_more(self, xu3):
        shape = RunShape("fluidanimate", n_units=_UNITS)
        d1 = run("hars-d1", shape, RunConfig(spec=xu3)).metrics
        d9 = run("hars-d9", shape, RunConfig(spec=xu3)).metrics
        assert d9.manager_overhead_s > d1.manager_overhead_s
        assert d9.manager_cpu_percent < 10.0  # paper: small overhead

    def test_wide_search_at_least_as_efficient(self, xu3):
        shape = RunShape("fluidanimate", n_units=_UNITS)
        d1 = run("hars-d1", shape, RunConfig(spec=xu3)).metrics
        d7 = run("hars-d7", shape, RunConfig(spec=xu3)).metrics
        assert d7.perf_per_watt > 0.9 * d1.perf_per_watt


class TestFig54Findings:
    @pytest.fixture(scope="class")
    def case4(self, xu3):
        shapes = [
            RunShape("bodytrack", n_units=60),
            RunShape("fluidanimate", n_units=90),
        ]
        return {
            version: run(version, shapes, RunConfig(spec=xu3)).metrics
            for version in ("baseline", "cons-i", "mp-hars-i", "mp-hars-e")
        }

    def test_mp_hars_beats_baseline(self, case4):
        base = case4["baseline"].perf_per_watt
        assert case4["mp-hars-i"].perf_per_watt > 1.2 * base
        assert case4["mp-hars-e"].perf_per_watt > 1.5 * base

    def test_mp_hars_e_beats_cons_i(self, case4):
        assert (
            case4["mp-hars-e"].perf_per_watt
            > case4["cons-i"].perf_per_watt
        )

    def test_version_ordering(self, case4):
        pp = {v: m.perf_per_watt for v, m in case4.items()}
        assert pp["baseline"] < pp["mp-hars-i"] < pp["mp-hars-e"]


class TestComparisonHarness:
    def test_mini_fig51_grid_runs(self, xu3):
        comparison = run_perf_watt_comparison(
            0.5,
            spec=xu3,
            benchmarks=["swaptions"],
            versions=("baseline", "hars-e"),
            n_units=50,
        )
        assert comparison.normalized["SW"]["baseline"] == pytest.approx(1.0)
        assert comparison.normalized["SW"]["hars-e"] > 1.0
        assert "SW" in comparison.render()
