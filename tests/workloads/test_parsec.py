"""Unit tests for the PARSEC-like benchmark presets."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.core_types import cortex_a7, cortex_a15
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.parsec import (
    BENCHMARKS,
    SHORT_CODES,
    benchmark_info,
    make_benchmark,
    resolve_name,
)
from repro.workloads.pipeline import PipelineWorkload


class TestCatalog:
    def test_six_benchmarks(self):
        assert len(BENCHMARKS) == 6
        assert set(SHORT_CODES.values()) == {"BL", "BO", "FA", "FE", "FL", "SW"}

    def test_resolve_accepts_codes_and_names(self):
        assert resolve_name("BL") == "blackscholes"
        assert resolve_name("bodytrack") == "bodytrack"
        assert resolve_name("Ferret") == "ferret"
        with pytest.raises(ConfigurationError):
            resolve_name("doom")

    def test_every_preset_instantiates(self):
        for name in BENCHMARKS:
            model = make_benchmark(name, n_units=10)
            # Data-parallel presets run -n threads; ferret runs -n per
            # middle stage plus serial input/output (4·8 + 2 = 34).
            expected = 34 if name == "ferret" else 8
            assert model.n_threads == expected
            assert model.total_heartbeats() == 10

    def test_native_unit_counts(self):
        assert make_benchmark("fluidanimate").total_heartbeats() == 500
        assert make_benchmark("bodytrack").total_heartbeats() == 260

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigurationError):
            make_benchmark("swaptions", n_units=0)


class TestPaperProperties:
    def test_blackscholes_ratio_is_one(self):
        # The paper measures the same performance on big and little cores.
        info = benchmark_info("blackscholes")
        assert info.traits.big_little_ratio == 1.0

    def test_blackscholes_has_serial_phase(self):
        model = make_benchmark("blackscholes", n_units=10)
        assert isinstance(model, DataParallelWorkload)
        assert model.in_serial_phase
        assert model.wants_cpu(0)
        assert not model.wants_cpu(1)

    def test_other_benchmarks_have_no_serial_phase(self):
        for name in ("bodytrack", "swaptions", "fluidanimate", "facesim"):
            model = make_benchmark(name, n_units=10)
            assert not model.in_serial_phase

    def test_ferret_is_a_six_stage_pipeline(self):
        model = make_benchmark("ferret", n_units=10)
        assert isinstance(model, PipelineWorkload)
        assert len(model.stages) == 6
        # Serial input/output stages plus 4 middle stages of -n threads.
        assert model.n_threads == 4 * 8 + 2
        assert model.stages[0].n_threads == 1
        assert model.stages[1].n_threads == 8
        assert model.stages[-1].n_threads == 1

    def test_ferret_scales_with_n_parameter(self):
        model = make_benchmark("ferret", n_units=10, n_threads=2)
        assert model.n_threads == 4 * 2 + 2

    def test_ferret_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            make_benchmark("ferret", n_units=10, n_threads=0)

    def test_ratios_exceed_one_except_blackscholes(self):
        for name in BENCHMARKS:
            ratio = benchmark_info(name).traits.big_little_ratio
            if name == "blackscholes":
                assert ratio == 1.0
            else:
                assert ratio > 1.0

    def test_thread_speed_reflects_true_ratio(self):
        model = make_benchmark("swaptions", n_units=10)
        big = model.thread_speed("big", cortex_a15(), 1000)
        little = model.thread_speed("little", cortex_a7(), 1000)
        assert big / little == pytest.approx(
            benchmark_info("swaptions").traits.big_little_ratio
        )

    def test_work_scaled_to_baseline_hps(self):
        # 8 threads crowded on 4 big cores at 1.6 GHz close the barrier
        # at roughly the catalogued baseline rate.
        info = benchmark_info("swaptions")
        model = make_benchmark("swaptions", n_units=10)
        speed = model.thread_speed("big", cortex_a15(), 1600)
        unit_work = model.profile.work(0)
        assert 4 * speed / unit_work == pytest.approx(
            info.baseline_hps, rel=0.01
        )

    def test_memory_intensity_ordering(self):
        # facesim is the most memory-bound; swaptions the least.
        mi = {n: benchmark_info(n).traits.mem_intensity for n in BENCHMARKS}
        assert mi["facesim"] == max(mi.values())
        assert mi["swaptions"] == min(mi.values())
