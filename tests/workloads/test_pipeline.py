"""Unit tests for the pipeline workload model."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import WorkloadTraits
from repro.workloads.pipeline import PipelineWorkload, StageSpec


def _model(n_items=10, queue_depth=5, costs=(1.0, 1.0)):
    stages = tuple(
        StageSpec(f"s{i}", 1, cost) for i, cost in enumerate(costs)
    )
    return PipelineWorkload(
        WorkloadTraits(name="pipe-test"), stages, n_items, queue_depth
    )


class TestTopology:
    def test_threads_assigned_stage_by_stage(self):
        stages = (
            StageSpec("in", 1, 0.5),
            StageSpec("mid", 2, 1.0),
            StageSpec("out", 1, 0.5),
        )
        model = PipelineWorkload(WorkloadTraits(name="p"), stages, 5)
        assert model.n_threads == 4
        assert [model.thread_stage(i) for i in range(4)] == [0, 1, 1, 2]
        assert model.stage_threads(1) == (1, 2)

    def test_needs_two_stages(self):
        with pytest.raises(ConfigurationError):
            PipelineWorkload(
                WorkloadTraits(name="p"), (StageSpec("only", 1, 1.0),), 5
            )


class TestFlow:
    def test_item_advances_one_stage_per_tick(self):
        model = _model()
        first = model.advance({0: 1.0, 1: 1.0})
        assert first.heartbeats == 0  # item still between the stages
        second = model.advance({0: 1.0, 1: 1.0})
        assert second.heartbeats == 1

    def test_heartbeat_per_item_leaving_last_stage(self):
        model = _model(n_items=3)
        total = 0
        for _ in range(20):
            total += model.advance({0: 5.0, 1: 5.0}).heartbeats
            if model.is_done():
                break
        assert total == 3
        assert model.items_emitted == 3

    def test_source_is_finite(self):
        model = _model(n_items=2, queue_depth=10)
        model.advance({0: 100.0})
        assert model.queue_levels()[1] == pytest.approx(2.0)
        # The source is drained: stage 0 has nothing more to do.
        assert not model.wants_cpu(0)

    def test_bounded_queue_blocks_producer(self):
        model = _model(n_items=100, queue_depth=5)
        result = model.advance({0: 100.0})
        # Stage 0 can only fill the queue to its depth.
        assert model.queue_levels()[1] == pytest.approx(5.0)
        assert result.consumed[0] == pytest.approx(5.0)
        assert not model.wants_cpu(0)  # blocked on the full queue

    def test_starved_stage_does_not_want_cpu(self):
        model = _model()
        assert model.wants_cpu(0)
        assert not model.wants_cpu(1)  # nothing has reached stage 1 yet

    def test_starved_stage_consumes_nothing(self):
        model = _model()
        result = model.advance({1: 5.0})
        assert result.consumed.get(1, 0.0) == 0.0

    def test_slowest_stage_bounds_throughput(self):
        # Stage 1 is 4× the cost of stage 0: output rate tracks stage 1.
        model = _model(n_items=50, queue_depth=5, costs=(0.5, 2.0))
        beats = 0
        ticks = 0
        while not model.is_done() and ticks < 500:
            beats += model.advance({0: 1.0, 1: 1.0}).heartbeats
            ticks += 1
        # Stage 1 processes 0.5 items per tick once the pipe is warm.
        assert beats == 50
        assert ticks == pytest.approx(50 / 0.5, rel=0.1)

    def test_done_after_all_items(self):
        model = _model(n_items=1)
        for _ in range(5):
            model.advance({0: 10.0, 1: 10.0})
        assert model.is_done()
        assert model.advance({0: 1.0}).done

    def test_reset(self):
        model = _model(n_items=2)
        for _ in range(10):
            model.advance({0: 5.0, 1: 5.0})
        model.reset()
        assert not model.is_done()
        assert model.items_emitted == 0
        assert model.queue_levels()[1] == 0.0


class TestValidation:
    def test_total_heartbeats(self):
        assert _model(n_items=9).total_heartbeats() == 9

    def test_bad_stage_spec(self):
        with pytest.raises(ConfigurationError):
            StageSpec("s", 0, 1.0)
        with pytest.raises(ConfigurationError):
            StageSpec("s", 1, 0.0)

    def test_bad_thread_index(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            _model().thread_stage(42)
