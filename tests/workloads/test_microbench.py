"""Unit tests for the microbenchmark and the power-profiling sweep."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.microbench import (
    MicrobenchWorkload,
    profile_power,
)


class TestMicrobenchWorkload:
    def test_duty_cycle_consumption(self):
        bench = MicrobenchWorkload(n_threads=2, duty=0.5)
        result = bench.advance({0: 4.0, 1: 2.0})
        assert result.consumed[0] == pytest.approx(2.0)
        assert result.consumed[1] == pytest.approx(1.0)
        assert bench.work_done == pytest.approx(3.0)

    def test_never_done_and_no_heartbeats(self):
        bench = MicrobenchWorkload(n_threads=1)
        assert not bench.is_done()
        assert bench.total_heartbeats() == 0
        assert bench.advance({0: 1.0}).heartbeats == 0

    def test_always_wants_cpu(self):
        bench = MicrobenchWorkload(n_threads=2, duty=0.1)
        assert bench.wants_cpu(0) and bench.wants_cpu(1)

    def test_duty_bounds(self):
        with pytest.raises(ConfigurationError):
            MicrobenchWorkload(n_threads=1, duty=0.0)
        with pytest.raises(ConfigurationError):
            MicrobenchWorkload(n_threads=1, duty=1.5)

    def test_reset_clears_work(self):
        bench = MicrobenchWorkload(n_threads=1)
        bench.advance({0: 5.0})
        bench.reset()
        assert bench.work_done == 0.0


class TestProfilePower:
    def test_sweep_covers_full_grid(self, small_spec):
        points = profile_power(small_spec, utilizations=(0.5, 1.0), dwell_s=0.6)
        # 2 clusters × 3 freqs × 2 core counts × 2 utilizations.
        assert len(points) == 2 * 3 * 2 * 2

    def test_power_increases_with_load(self, small_spec):
        points = profile_power(small_spec, utilizations=(0.25, 1.0), dwell_s=0.6)
        by_key = {
            (p.cluster, p.freq_mhz, p.cores_used, p.utilization): p.watts
            for p in points
        }
        freq = small_spec.big.max_freq_mhz
        light = by_key[("big", freq, 1, 0.25)]
        heavy = by_key[("big", freq, 2, 1.0)]
        assert heavy > light

    def test_points_are_positive(self, small_spec):
        for point in profile_power(
            small_spec, utilizations=(1.0,), dwell_s=0.6
        ):
            assert point.watts > 0

    def test_invalid_parameters_rejected(self, small_spec):
        with pytest.raises(ConfigurationError):
            profile_power(small_spec, dwell_s=0.0)
        with pytest.raises(ConfigurationError):
            profile_power(small_spec, utilizations=(0.0,), dwell_s=0.5)
