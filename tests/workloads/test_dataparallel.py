"""Unit tests for the barrier data-parallel workload model."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.phases import ConstantProfile


def _model(n_threads=4, n_units=3, unit_work=4.0, serial=0.0):
    traits = WorkloadTraits(name="dp-test")
    return DataParallelWorkload(
        traits,
        n_threads,
        ConstantProfile(unit_work),
        n_units,
        serial_work=serial,
    )


class TestBarrierSemantics:
    def test_all_threads_needed_for_heartbeat(self):
        model = _model()
        # Three of four threads finish their shares: no heartbeat.
        result = model.advance({0: 1.0, 1: 1.0, 2: 1.0})
        assert result.heartbeats == 0
        # The straggler finishes: the unit completes.
        result = model.advance({3: 1.0})
        assert result.heartbeats == 1

    def test_threads_cannot_work_ahead_of_barrier(self):
        model = _model()
        result = model.advance({0: 10.0})
        # Thread 0 can only do its 1.0 share of the current unit.
        assert result.consumed[0] == pytest.approx(1.0)
        assert not model.wants_cpu(0)
        assert model.wants_cpu(1)

    def test_large_grants_complete_multiple_units(self):
        model = _model(n_units=3)
        result = model.advance({i: 100.0 for i in range(4)})
        assert result.heartbeats == 3
        assert result.done
        assert model.is_done()

    def test_equal_share_split(self):
        model = _model(n_threads=4, unit_work=8.0)
        result = model.advance({i: 100.0 for i in range(4)})
        # 3 units × 2.0 share each.
        assert all(
            consumed == pytest.approx(6.0)
            for consumed in result.consumed.values()
        )

    def test_done_model_consumes_nothing(self):
        model = _model(n_units=1)
        model.advance({i: 100.0 for i in range(4)})
        result = model.advance({0: 1.0})
        assert result.done and not result.consumed


class TestSerialPhase:
    def test_only_thread_zero_runs_during_serial_phase(self):
        model = _model(serial=5.0)
        assert model.wants_cpu(0)
        assert not model.wants_cpu(1)

    def test_serial_phase_emits_no_heartbeats(self):
        model = _model(serial=5.0)
        result = model.advance({0: 4.0})
        assert result.heartbeats == 0
        assert model.in_serial_phase

    def test_serial_grant_to_other_threads_is_wasted(self):
        model = _model(serial=5.0)
        result = model.advance({1: 3.0})
        assert result.consumed.get(1, 0.0) == 0.0

    def test_transition_to_parallel_within_one_advance(self):
        model = _model(serial=1.0, n_units=1, unit_work=4.0)
        result = model.advance({i: 100.0 for i in range(4)})
        assert result.heartbeats == 1
        assert result.consumed[0] == pytest.approx(1.0 + 1.0)  # serial + share

    def test_units_completed_counter(self):
        model = _model(n_units=2)
        assert model.units_completed == 0
        model.advance({i: 1.0 for i in range(4)})
        assert model.units_completed == 1


class TestValidation:
    def test_total_heartbeats(self):
        assert _model(n_units=7).total_heartbeats() == 7

    def test_reset_restores_initial_state(self):
        model = _model(n_units=2)
        model.advance({i: 100.0 for i in range(4)})
        model.reset()
        assert not model.is_done()
        assert model.units_completed == 0

    def test_bad_thread_index_raises(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            _model().wants_cpu(99)

    def test_negative_serial_rejected(self):
        with pytest.raises(ConfigurationError):
            _model(serial=-1.0)

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigurationError):
            _model(n_units=0)
