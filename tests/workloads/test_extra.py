"""Tests for the extra (beyond-the-paper) workload presets."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.extra import EXTRA_BENCHMARKS, make_extra_benchmark
from repro.workloads.parsec import BENCHMARKS
from repro.workloads.pipeline import PipelineWorkload


class TestCatalog:
    def test_presets_exist(self):
        assert set(EXTRA_BENCHMARKS) == {"streamcluster", "canneal", "x264"}

    def test_no_overlap_with_paper_set(self):
        assert not set(EXTRA_BENCHMARKS) & set(BENCHMARKS)

    def test_instantiation(self):
        for name in EXTRA_BENCHMARKS:
            model = make_extra_benchmark(name, n_units=10)
            assert model.total_heartbeats() == 10

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_extra_benchmark("raytrace")

    def test_bad_units_rejected(self):
        with pytest.raises(ConfigurationError):
            make_extra_benchmark("canneal", n_units=0)


class TestShapes:
    def test_streamcluster_is_most_memory_bound(self):
        model = make_extra_benchmark("streamcluster", n_units=5)
        assert model.traits.mem_intensity > 0.5
        assert isinstance(model, DataParallelWorkload)

    def test_canneal_annealing_schedule_decreases(self):
        model = make_extra_benchmark("canneal", n_units=100)
        early = model.profile.work(5)
        late = model.profile.work(95)
        assert early > late

    def test_x264_stage_widths_are_uneven(self):
        model = make_extra_benchmark("x264", n_units=10, n_threads=8)
        assert isinstance(model, PipelineWorkload)
        widths = [s.n_threads for s in model.stages]
        assert widths == [1, 14, 4]
        assert model.n_threads == 19

    def test_x264_needs_two_threads(self):
        with pytest.raises(ConfigurationError):
            make_extra_benchmark("x264", n_units=5, n_threads=1)


class TestUnderHars:
    def test_streamcluster_adapts_wide_and_slow(self, xu3, power_estimator):
        """Memory-bound work gets little from frequency: HARS should
        settle at the bottom of a frequency range."""
        from repro.core.manager import HarsManager
        from repro.core.perf_estimator import PerformanceEstimator
        from repro.core.policy import HARS_E
        from repro.heartbeats.targets import PerformanceTarget
        from repro.sim.engine import Simulation
        from repro.sim.process import SimApp

        sim = Simulation(xu3)
        model = make_extra_benchmark("streamcluster", n_units=60)
        # Max-rate probe then 50% target, as the runner would do.
        probe = Simulation(xu3)
        probe_app = probe.add_app(
            SimApp(
                "sc",
                make_extra_benchmark("streamcluster", n_units=40),
                PerformanceTarget(1.0, 1.0, 1.0),
            )
        )
        probe.run(until_s=300)
        target = PerformanceTarget.fraction_of(
            probe_app.log.overall_rate(), 0.5
        )
        app = sim.add_app(SimApp("sc", model, target))
        manager = HarsManager(
            "sc", HARS_E, PerformanceEstimator(), power_estimator
        )
        sim.add_controller(manager)
        sim.run(until_s=600)
        assert app.monitor.mean_normalized_performance() > 0.8
        # Whatever cluster it uses runs below the top frequency.
        state = manager.state
        if state.c_big:
            assert state.f_big_mhz < 1600
        if state.c_little:
            assert state.f_little_mhz <= 1300
