"""Unit tests for work profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.phases import (
    ConstantProfile,
    NoisyProfile,
    SinusoidProfile,
    StepProfile,
    describe_profile,
)


class TestConstantProfile:
    def test_constant(self):
        profile = ConstantProfile(2.5)
        assert profile.work(0) == profile.work(100) == 2.5

    def test_mean(self):
        assert ConstantProfile(3.0).mean_work(10) == pytest.approx(3.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ConstantProfile(0.0)

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            ConstantProfile(1.0).work(-1)


class TestStepProfile:
    def test_segments(self):
        profile = StepProfile(segments=((2, 1.0), (3, 2.0)))
        assert [profile.work(i) for i in range(5)] == [1, 1, 2, 2, 2]

    def test_past_end_repeats_last(self):
        profile = StepProfile(segments=((1, 1.0), (1, 4.0)))
        assert profile.work(99) == 4.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            StepProfile(segments=())

    def test_rejects_bad_segment(self):
        with pytest.raises(ConfigurationError):
            StepProfile(segments=((0, 1.0),))


class TestSinusoidProfile:
    def test_oscillates_around_base(self):
        profile = SinusoidProfile(base_work=2.0, amplitude=0.5, period_units=8)
        values = [profile.work(i) for i in range(8)]
        assert max(values) == pytest.approx(2.5)
        assert min(values) == pytest.approx(1.5)
        assert profile.work(0) == pytest.approx(2.0)

    def test_periodicity(self):
        profile = SinusoidProfile(base_work=1.0, amplitude=0.3, period_units=10)
        assert profile.work(3) == pytest.approx(profile.work(13))

    def test_amplitude_must_leave_work_positive(self):
        with pytest.raises(ConfigurationError):
            SinusoidProfile(base_work=1.0, amplitude=1.0, period_units=10)


class TestNoisyProfile:
    def test_deterministic_per_seed_and_index(self):
        profile = NoisyProfile(ConstantProfile(1.0), sigma=0.1)
        assert profile.work(5, seed=42) == profile.work(5, seed=42)

    def test_different_seeds_differ(self):
        profile = NoisyProfile(ConstantProfile(1.0), sigma=0.1)
        assert profile.work(5, seed=1) != profile.work(5, seed=2)

    def test_zero_sigma_is_identity(self):
        profile = NoisyProfile(ConstantProfile(1.0), sigma=0.0)
        assert profile.work(7) == 1.0

    def test_sigma_bounds(self):
        with pytest.raises(ConfigurationError):
            NoisyProfile(ConstantProfile(1.0), sigma=0.5)


@given(
    sigma=st.floats(min_value=0.0, max_value=0.4),
    index=st.integers(min_value=0, max_value=10_000),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_noisy_work_always_positive(sigma, index, seed):
    profile = NoisyProfile(ConstantProfile(1.0), sigma=sigma)
    assert profile.work(index, seed) > 0


def test_describe_profile():
    stats = describe_profile(StepProfile(segments=((2, 1.0), (2, 3.0))), 4)
    assert stats["mean"] == pytest.approx(2.0)
    assert stats["min"] == 1.0 and stats["max"] == 3.0
    assert stats["cov"] > 0


class TestTraceProfile:
    def test_replays_recorded_sizes(self):
        from repro.workloads.phases import TraceProfile

        profile = TraceProfile(sizes=(1.0, 2.0, 3.0))
        assert [profile.work(i) for i in range(3)] == [1.0, 2.0, 3.0]

    def test_wraps_past_the_end(self):
        from repro.workloads.phases import TraceProfile

        profile = TraceProfile(sizes=(1.0, 2.0))
        assert profile.work(5) == 2.0

    def test_record_profile_materializes(self):
        from repro.workloads.phases import NoisyProfile, record_profile

        noisy = NoisyProfile(ConstantProfile(1.0), sigma=0.2)
        trace = record_profile(noisy, n_units=10, seed=3)
        for i in range(10):
            assert trace.work(i) == noisy.work(i, seed=3)

    def test_recorded_trace_is_seed_independent(self):
        from repro.workloads.phases import NoisyProfile, record_profile

        noisy = NoisyProfile(ConstantProfile(1.0), sigma=0.2)
        trace = record_profile(noisy, n_units=5, seed=3)
        # Replay ignores the seed: it is already materialized.
        assert trace.work(2, seed=99) == trace.work(2, seed=0)

    def test_validation(self):
        from repro.workloads.phases import TraceProfile, record_profile

        with pytest.raises(ConfigurationError):
            TraceProfile(sizes=())
        with pytest.raises(ConfigurationError):
            TraceProfile(sizes=(1.0, -1.0))
        with pytest.raises(ConfigurationError):
            record_profile(ConstantProfile(1.0), n_units=0)
