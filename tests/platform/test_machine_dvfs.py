"""Unit tests for the runtime machine state and DVFS controller."""

import pytest

from repro.errors import FrequencyError, PlatformError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.dvfs import DvfsController
from repro.platform.machine import Machine


@pytest.fixture
def machine(xu3):
    return Machine(xu3)


@pytest.fixture
def dvfs(machine):
    return DvfsController(machine)


class TestMachine:
    def test_starts_at_max_frequency(self, machine):
        assert machine.freq_mhz(BIG) == 1600
        assert machine.freq_mhz(LITTLE) == 1300

    def test_set_freq_validates_operating_point(self, machine):
        machine.set_freq_mhz(BIG, 1000)
        assert machine.freq_mhz(BIG) == 1000
        with pytest.raises(FrequencyError):
            machine.set_freq_mhz(BIG, 1050)

    def test_freq_index_tracks_current(self, machine):
        machine.set_freq_mhz(LITTLE, 800)
        assert machine.freq_index(LITTLE) == 0
        machine.set_freq_mhz(LITTLE, 1300)
        assert machine.freq_index(LITTLE) == 5

    def test_unknown_cluster_raises(self, machine):
        with pytest.raises(PlatformError):
            machine.freq_mhz("gpu")

    def test_all_cores_start_online(self, machine):
        assert machine.online_core_ids() == tuple(range(8))
        assert machine.online_core_ids(BIG) == (4, 5, 6, 7)

    def test_hotplug(self, machine):
        machine.set_core_online(7, False)
        assert 7 not in machine.online_core_ids()
        assert machine.online_core_ids(BIG) == (4, 5, 6)
        machine.set_core_online(7, True)
        assert 7 in machine.online_core_ids()

    def test_hotplug_unknown_core_raises(self, machine):
        with pytest.raises(PlatformError):
            machine.set_core_online(42, False)

    def test_core_speed_uses_cluster_frequency(self, machine):
        machine.set_freq_mhz(BIG, 800)
        slow = machine.core_speed(4)
        machine.set_freq_mhz(BIG, 1600)
        assert machine.core_speed(4) == pytest.approx(2 * slow)

    def test_snapshot(self, machine):
        machine.set_freq_mhz(BIG, 900)
        assert machine.snapshot() == {BIG: 900, LITTLE: 1300}


class TestDvfsController:
    def test_available_frequencies(self, dvfs):
        assert dvfs.available_frequencies(BIG)[0] == 800
        assert len(dvfs.available_frequencies(LITTLE)) == 6

    def test_set_frequency_and_current(self, dvfs):
        dvfs.set_frequency(BIG, 1100)
        assert dvfs.current(BIG) == 1100
        assert dvfs.current_index(BIG) == 3

    def test_set_index(self, dvfs):
        dvfs.set_index(LITTLE, 2)
        assert dvfs.current(LITTLE) == 1000

    def test_step_clamps_at_table_edges(self, dvfs):
        dvfs.set_frequency(BIG, 800)
        assert dvfs.step(BIG, -3) == 800
        dvfs.set_frequency(BIG, 1600)
        assert dvfs.step(BIG, +5) == 1600

    def test_step_moves_by_delta(self, dvfs):
        dvfs.set_frequency(BIG, 1200)
        assert dvfs.step(BIG, 2) == 1400
        assert dvfs.step(BIG, -4) == 1000

    def test_set_max_and_min(self, dvfs):
        dvfs.set_min()
        assert dvfs.current(BIG) == 800 and dvfs.current(LITTLE) == 800
        dvfs.set_max()
        assert dvfs.current(BIG) == 1600 and dvfs.current(LITTLE) == 1300

    def test_validate(self, dvfs):
        assert dvfs.validate(BIG, 1500) == 1500
        with pytest.raises(FrequencyError):
            dvfs.validate(LITTLE, 1500)
