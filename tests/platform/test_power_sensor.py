"""Unit tests for the ground-truth power model and the power sensor."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.machine import Machine
from repro.platform.power import IDLE, CoreActivity, PowerModel
from repro.platform.sensor import DEFAULT_SAMPLE_PERIOD_S, PowerSensor


@pytest.fixture
def machine(xu3):
    return Machine(xu3)


@pytest.fixture
def model(xu3):
    return PowerModel(xu3)


def _full_load(core_ids, activity=1.0):
    return {c: CoreActivity(utilization=1.0, activity_factor=activity) for c in core_ids}


class TestPowerModel:
    def test_idle_platform_draws_little_power(self, model, machine):
        watts = model.platform_power(machine, {})
        assert 0 < watts["total"] < 2.5
        assert watts["total"] == pytest.approx(
            watts[BIG] + watts[LITTLE] + watts["board"]
        )

    def test_big_cluster_dominates_at_full_load(self, model, machine):
        watts = model.platform_power(machine, _full_load(range(8)))
        assert watts[BIG] > 4 * watts[LITTLE]

    def test_big_cluster_full_load_near_5_5w(self, model, machine):
        # Calibration anchor from the XU3's measured envelope.
        watts = model.platform_power(machine, _full_load((4, 5, 6, 7)))
        assert 4.5 < watts[BIG] < 7.0

    def test_little_cluster_full_load_under_1_2w(self, model, machine):
        watts = model.platform_power(machine, _full_load((0, 1, 2, 3)))
        assert 0.4 < watts[LITTLE] < 1.2

    def test_power_monotonic_in_utilization(self, model, machine):
        powers = []
        for util in (0.25, 0.5, 0.75, 1.0):
            acts = {4: CoreActivity(utilization=util)}
            powers.append(model.platform_power(machine, acts)[BIG])
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_power_monotonic_in_frequency(self, model, machine):
        powers = []
        for freq in machine.spec.big.frequencies_mhz:
            machine.set_freq_mhz(BIG, freq)
            powers.append(
                model.platform_power(machine, _full_load((4, 5, 6, 7)))[BIG]
            )
        assert powers == sorted(powers)

    def test_activity_factor_scales_dynamic_power(self, model, machine):
        busy = model.platform_power(machine, _full_load((4,), activity=1.0))
        calm = model.platform_power(machine, _full_load((4,), activity=0.5))
        assert calm[BIG] < busy[BIG]

    def test_offline_cores_draw_nothing(self, model, machine):
        for core in range(4, 8):
            machine.set_core_online(core, False)
        watts = model.platform_power(machine, {})
        assert watts[BIG] == 0.0

    def test_idle_constant(self):
        assert IDLE.utilization == 0.0

    def test_invalid_activity_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreActivity(utilization=1.5)
        with pytest.raises(ConfigurationError):
            CoreActivity(utilization=0.5, activity_factor=0.0)


class TestPowerSensor:
    def _watts(self, total=2.0):
        return {BIG: total - 0.7, LITTLE: 0.45, "board": 0.25, "total": total}

    def test_energy_integration(self):
        sensor = PowerSensor()
        for _ in range(100):
            sensor.record(0.01, self._watts(3.0))
        assert sensor.elapsed_s == pytest.approx(1.0)
        assert sensor.energy_j() == pytest.approx(3.0)
        assert sensor.average_power_w() == pytest.approx(3.0)

    def test_sample_period_matches_paper(self):
        assert DEFAULT_SAMPLE_PERIOD_S == pytest.approx(0.263808)

    def test_samples_captured_at_period(self):
        sensor = PowerSensor(sample_period_s=0.1)
        for _ in range(100):
            sensor.record(0.01, self._watts())
        assert len(sensor.samples) == 10
        assert sensor.samples[0].time_s == pytest.approx(0.1)

    def test_sampled_average_matches_constant_power(self):
        sensor = PowerSensor(sample_period_s=0.05)
        for _ in range(50):
            sensor.record(0.01, self._watts(2.5))
        assert sensor.sampled_average_w() == pytest.approx(2.5)

    def test_average_before_any_record_raises(self):
        with pytest.raises(ConfigurationError):
            PowerSensor().average_power_w()

    def test_missing_channel_rejected(self):
        sensor = PowerSensor()
        with pytest.raises(ConfigurationError):
            sensor.record(0.01, {"total": 1.0})

    def test_unknown_channel_query_rejected(self):
        sensor = PowerSensor()
        sensor.record(0.01, self._watts())
        with pytest.raises(ConfigurationError):
            sensor.energy_j("gpu")

    def test_reset_clears_state(self):
        sensor = PowerSensor()
        sensor.record(0.5, self._watts())
        sensor.reset()
        assert sensor.elapsed_s == 0.0
        assert not sensor.samples
        assert sensor.energy_j() == 0.0

    def test_per_channel_energy(self):
        sensor = PowerSensor()
        sensor.record(2.0, self._watts(2.0))
        assert sensor.energy_j(BIG) == pytest.approx(2.6)
        assert sensor.energy_j(LITTLE) == pytest.approx(0.9)

    def test_no_sample_drift_at_paper_tick_period_ratio(self):
        # Regression: accumulating the next-sample time as a running
        # float sum drifts against the summed 10 ms ticks and eventually
        # skips or double-fires a boundary.  Over 100 000 ticks (1000 s)
        # at the paper's 263.808 ms period the count must be exact.
        sensor = PowerSensor()  # DEFAULT_SAMPLE_PERIOD_S = 0.263808
        for _ in range(100_000):
            sensor.record(0.01, self._watts())
        expected = int(1000.0 / DEFAULT_SAMPLE_PERIOD_S)  # 3790
        assert len(sensor.samples) == expected
        # Every sample sits at an exact multiple of the period.
        for i, sample in enumerate(sensor.samples):
            assert sample.time_s == pytest.approx(
                (i + 1) * DEFAULT_SAMPLE_PERIOD_S, abs=1e-9
            )

    def test_reset_mid_period_restarts_sampling_cleanly(self):
        sensor = PowerSensor(sample_period_s=0.1)
        # Stop 30 ms into the second period...
        for _ in range(13):
            sensor.record(0.01, self._watts())
        assert len(sensor.samples) == 1
        sensor.reset()
        # ...and the first post-reset sample lands one full period after
        # the reset, not 70 ms after it.
        for _ in range(9):
            sensor.record(0.01, self._watts())
        assert len(sensor.samples) == 0
        sensor.record(0.01, self._watts())
        assert len(sensor.samples) == 1
        assert sensor.samples[0].time_s == pytest.approx(0.1)

    def test_fault_hook_drops_and_counts_samples(self):
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: None
        for _ in range(50):
            sensor.record(0.01, self._watts(3.0))
        assert not sensor.samples
        assert sensor.dropped_samples == 5
        # Ground truth is untouched by the observation fault.
        assert sensor.energy_j() == pytest.approx(1.5)

    def test_fault_hook_survives_reset(self):
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: None
        sensor.record(0.1, self._watts())
        sensor.reset()
        assert sensor.dropped_samples == 0
        sensor.record(0.1, self._watts())
        assert sensor.dropped_samples == 1

    def test_fault_hook_can_corrupt_readings(self):
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: {ch: v * 2 for ch, v in w.items()}
        for _ in range(10):
            sensor.record(0.01, self._watts(2.0))
        assert sensor.sampled_average_w() == pytest.approx(4.0)
        assert sensor.average_power_w() == pytest.approx(2.0)

    def test_negative_readings_are_clamped_and_counted(self):
        # INA231 registers are unsigned: an injected negative reading
        # (noise can overshoot) reaches readers clamped at zero.
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: {ch: v - 1.0 for ch, v in w.items()}
        for _ in range(10):
            sensor.record(0.01, self._watts(2.0))
        assert sensor.clamped_samples == 1
        sample = sensor.samples[0].watts
        assert all(value >= 0 for value in sample.values())
        assert sample["board"] == 0.0          # 0.25 − 1.0 clamped
        assert sample["total"] == pytest.approx(1.0)  # untouched rail

    def test_clamp_counts_once_per_sample(self):
        # Two negative channels in one reading are one clamped sample.
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: {ch: -v for ch, v in w.items()}
        for _ in range(30):
            sensor.record(0.01, self._watts(2.0))
        assert sensor.clamped_samples == 3
        assert all(
            value == 0.0
            for sample in sensor.samples
            for value in sample.watts.values()
        )

    def test_clean_samples_never_count_as_clamped(self):
        sensor = PowerSensor(sample_period_s=0.1)
        for _ in range(30):
            sensor.record(0.01, self._watts(2.0))
        assert sensor.clamped_samples == 0

    def test_reset_clears_clamped_counter(self):
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: {ch: -1.0 for ch in w}
        sensor.record(0.1, self._watts())
        assert sensor.clamped_samples == 1
        sensor.reset()
        assert sensor.clamped_samples == 0

    def test_best_average_prefers_samples(self):
        sensor = PowerSensor(sample_period_s=0.1)
        for _ in range(20):
            sensor.record(0.01, self._watts(2.0))
        assert sensor.best_average_w() == sensor.sampled_average_w()

    def test_best_average_degrades_to_integrated_on_total_dropout(self):
        sensor = PowerSensor(sample_period_s=0.1)
        sensor.fault_hook = lambda t, w: None
        for _ in range(20):
            sensor.record(0.01, self._watts(2.0))
        with pytest.raises(ConfigurationError):
            sensor.sampled_average_w()
        assert sensor.best_average_w() == pytest.approx(2.0)
