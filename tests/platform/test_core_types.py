"""Unit tests for core-type specifications."""

import pytest

from repro.errors import ConfigurationError, FrequencyError
from repro.platform.core_types import (
    BASELINE_FREQ_MHZ,
    CoreTypeSpec,
    cortex_a7,
    cortex_a15,
)


class TestFactories:
    def test_a15_is_out_of_order_three_wide(self):
        big = cortex_a15()
        assert big.pipeline == "out-of-order"
        assert big.issue_width == 3

    def test_a7_is_in_order_two_wide(self):
        little = cortex_a7()
        assert little.pipeline == "in-order"
        assert little.issue_width == 2

    def test_issue_width_ratio_matches_paper_r0(self):
        # The paper derives r0 = 3/2 from the issue widths.
        assert cortex_a15().issue_width / cortex_a7().issue_width == 1.5

    def test_speed_ratio_at_f0_is_r0(self):
        assert cortex_a15().speed_at_f0 / cortex_a7().speed_at_f0 == 1.5

    def test_frequency_ranges(self):
        assert cortex_a15().frequencies_mhz == tuple(range(800, 1601, 100))
        assert cortex_a7().frequencies_mhz == tuple(range(800, 1301, 100))


class TestVoltageTable:
    def test_voltage_monotonic_in_frequency(self):
        for core in (cortex_a15(), cortex_a7()):
            freqs = core.frequencies_mhz
            volts = [core.voltage_at(f) for f in freqs]
            assert volts == sorted(volts)

    def test_voltage_at_unknown_frequency_raises(self):
        with pytest.raises(FrequencyError):
            cortex_a15().voltage_at(850)

    def test_big_reaches_higher_voltage_than_little(self):
        big, little = cortex_a15(), cortex_a7()
        assert big.voltage_at(1600) > little.voltage_at(1300)


class TestComputeSpeed:
    def test_speed_at_baseline_frequency_is_base(self):
        big = cortex_a15()
        assert big.compute_speed(BASELINE_FREQ_MHZ) == pytest.approx(
            big.speed_at_f0
        )

    def test_speed_scales_linearly_when_compute_bound(self):
        big = cortex_a15()
        assert big.compute_speed(1600) == pytest.approx(
            big.speed_at_f0 * 1.6
        )

    def test_memory_intensity_damps_frequency_scaling(self):
        big = cortex_a15()
        gain_pure = big.compute_speed(1600) / big.compute_speed(800)
        gain_mem = big.compute_speed(1600, 0.5) / big.compute_speed(800, 0.5)
        assert gain_mem < gain_pure

    def test_speed_monotonic_in_frequency(self):
        little = cortex_a7()
        speeds = [little.compute_speed(f, 0.3) for f in little.frequencies_mhz]
        assert speeds == sorted(speeds)

    def test_invalid_mem_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            cortex_a15().compute_speed(800, 1.0)
        with pytest.raises(ConfigurationError):
            cortex_a15().compute_speed(800, -0.1)


class TestPower:
    def test_dynamic_power_grows_with_frequency(self):
        big = cortex_a15()
        powers = [big.dynamic_power(f, 1.0) for f in big.frequencies_mhz]
        assert powers == sorted(powers)
        assert powers[0] < powers[-1]

    def test_dynamic_power_proportional_to_activity(self):
        big = cortex_a15()
        assert big.dynamic_power(1200, 0.5) == pytest.approx(
            big.dynamic_power(1200, 1.0) / 2
        )

    def test_dynamic_power_superlinear_in_frequency(self):
        # V rises with f, so P ~ V²f grows faster than f.
        big = cortex_a15()
        ratio = big.dynamic_power(1600, 1.0) / big.dynamic_power(800, 1.0)
        assert ratio > 1600 / 800

    def test_big_core_hungrier_than_little(self):
        assert cortex_a15().dynamic_power(1300, 1.0) > cortex_a7().dynamic_power(
            1300, 1.0
        )

    def test_leakage_positive_and_scales_with_voltage(self):
        big = cortex_a15()
        assert 0 < big.leakage_power(800) < big.leakage_power(1600)

    def test_negative_activity_rejected(self):
        with pytest.raises(ConfigurationError):
            cortex_a15().dynamic_power(800, -0.5)


class TestValidation:
    def test_zero_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreTypeSpec(
                name="x",
                pipeline="in-order",
                issue_width=1,
                speed_at_f0=0.0,
                voltage_table={1000: 1.0},
                dynamic_capacitance_w=0.1,
                leakage_w_per_volt=0.01,
            )

    def test_empty_voltage_table_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreTypeSpec(
                name="x",
                pipeline="in-order",
                issue_width=1,
                speed_at_f0=1.0,
                voltage_table={},
                dynamic_capacitance_w=0.1,
                leakage_w_per_volt=0.01,
            )

    def test_bad_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreTypeSpec(
                name="x",
                pipeline="superscalar",
                issue_width=1,
                speed_at_f0=1.0,
                voltage_table={1000: 1.0},
                dynamic_capacitance_w=0.1,
                leakage_w_per_volt=0.01,
            )
