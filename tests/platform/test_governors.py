"""Behavioural tests for the cpufreq governor models."""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.platform.governors import (
    GOVERNORS,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.base import WorkloadTraits
from repro.workloads.dataparallel import DataParallelWorkload
from repro.workloads.microbench import MicrobenchWorkload
from repro.workloads.phases import ConstantProfile


def _busy_app(n_units=40):
    model = DataParallelWorkload(
        WorkloadTraits(name="busy"), 8, ConstantProfile(4.0), n_units
    )
    return SimApp("busy", model, PerformanceTarget(1.0, 1.0, 1.0))


def _light_app():
    return SimApp(
        "light",
        MicrobenchWorkload(n_threads=1, duty=0.05),
        PerformanceTarget(1.0, 1.0, 1.0),
    )


class TestStaticGovernors:
    def test_performance_pins_max(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_busy_app(5))
        sim.add_controller(PerformanceGovernor())
        sim.step()
        assert sim.dvfs.current(BIG) == 1600
        assert sim.dvfs.current(LITTLE) == 1300

    def test_powersave_pins_min(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_busy_app(5))
        sim.add_controller(PowersaveGovernor())
        sim.step()
        assert sim.dvfs.current(BIG) == 800
        assert sim.dvfs.current(LITTLE) == 800

    def test_registry(self):
        assert set(GOVERNORS) == {"performance", "powersave", "ondemand"}


class TestOndemand:
    def test_busy_cluster_ramps_to_max(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_busy_app())
        sim.add_controller(OndemandGovernor(sample_period_s=0.05))
        for _ in range(100):  # 1 s
            sim.step()
        # Eight hungry threads crowd the big cores: ondemand maxes big.
        assert sim.dvfs.current(BIG) == 1600

    def test_idle_cluster_stays_low(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_light_app())
        sim.add_controller(OndemandGovernor(sample_period_s=0.05))
        sim.run(until_s=3.0)
        # A 5 % duty thread keeps both clusters at the bottom.
        assert sim.dvfs.current(BIG) == 800
        assert sim.dvfs.current(LITTLE) == 800

    def test_ramps_down_when_load_vanishes(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(_busy_app(n_units=10))
        governor = OndemandGovernor(sample_period_s=0.05)
        sim.add_controller(governor)
        sim.run(until_s=120)
        assert app.is_done()
        # The workload is gone; a few more samples bring frequency down.
        for _ in range(50):
            sim.step()
        assert sim.dvfs.current(BIG) == 800

    def test_saves_power_vs_performance_on_bursty_load(self, xu3):
        def run(controller):
            sim = Simulation(xu3)
            sim.add_app(
                SimApp(
                    "burst",
                    MicrobenchWorkload(n_threads=2, duty=0.3),
                    PerformanceTarget(1.0, 1.0, 1.0),
                )
            )
            sim.add_controller(controller)
            sim.run(until_s=5.0)
            return sim.sensor.average_power_w()

        assert run(OndemandGovernor()) < run(PerformanceGovernor())

    def test_decision_counter(self, xu3):
        sim = Simulation(xu3)
        sim.add_app(_busy_app(5))
        governor = OndemandGovernor(sample_period_s=0.02)
        sim.add_controller(governor)
        sim.run(until_s=10)
        assert governor.decisions > 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OndemandGovernor(up_threshold=0.0)
        with pytest.raises(ConfigurationError):
            OndemandGovernor(sample_period_s=0.0)
