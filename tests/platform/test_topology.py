"""Unit tests for cpuset/topology helpers."""

import pytest

from repro.errors import PlatformError
from repro.platform.cluster import BIG, LITTLE
from repro.platform.topology import (
    cluster_mask,
    count_by_cluster,
    describe,
    first_n,
    full_mask,
    make_mask,
    split_mask,
)


class TestMasks:
    def test_full_mask(self, xu3):
        assert full_mask(xu3) == frozenset(range(8))

    def test_cluster_masks_partition_platform(self, xu3):
        big = cluster_mask(xu3, BIG)
        little = cluster_mask(xu3, LITTLE)
        assert big | little == full_mask(xu3)
        assert not big & little

    def test_make_mask_validates(self, xu3):
        assert make_mask([0, 5], xu3) == frozenset({0, 5})
        with pytest.raises(PlatformError):
            make_mask([0, 9], xu3)

    def test_split_mask(self, xu3):
        big, little = split_mask(frozenset({0, 1, 4, 6}), xu3)
        assert big == (4, 6)
        assert little == (0, 1)

    def test_count_by_cluster(self, xu3):
        assert count_by_cluster(frozenset({2, 3, 7}), xu3) == (1, 2)

    def test_describe(self, xu3):
        assert describe(frozenset({0, 4}), xu3) == "big[4]+little[0]"


class TestFirstN:
    def test_first_n_returns_lowest_ids(self, xu3):
        assert first_n(xu3, BIG, 2) == (4, 5)
        assert first_n(xu3, LITTLE, 3) == (0, 1, 2)

    def test_first_zero_is_empty(self, xu3):
        assert first_n(xu3, BIG, 0) == ()

    def test_first_n_over_capacity_raises(self, xu3):
        with pytest.raises(PlatformError):
            first_n(xu3, LITTLE, 5)
        with pytest.raises(PlatformError):
            first_n(xu3, BIG, -1)
