"""Unit tests for cluster and platform specifications."""

import pytest

from repro.errors import ConfigurationError, FrequencyError, PlatformError
from repro.platform.cluster import BIG, LITTLE, ClusterSpec
from repro.platform.core_types import cortex_a7, cortex_a15
from repro.platform.spec import (
    PlatformSpec,
    frequency_tables,
    odroid_xu3,
    small_test_platform,
)


class TestClusterSpec:
    def test_core_ids_are_contiguous(self, xu3):
        assert xu3.little.core_ids == (0, 1, 2, 3)
        assert xu3.big.core_ids == (4, 5, 6, 7)

    def test_freq_index_round_trip(self, xu3):
        for cluster in xu3.clusters:
            for index, freq in enumerate(cluster.frequencies_mhz):
                assert cluster.freq_index(freq) == index
                assert cluster.freq_at_index(index) == freq

    def test_freq_index_unknown_raises(self, xu3):
        with pytest.raises(FrequencyError):
            xu3.big.freq_index(1234)

    def test_freq_at_index_out_of_range_raises(self, xu3):
        with pytest.raises(FrequencyError):
            xu3.big.freq_at_index(99)
        with pytest.raises(FrequencyError):
            xu3.big.freq_at_index(-1)

    def test_clamp_freq_rounds_to_nearest(self, xu3):
        assert xu3.big.clamp_freq(1240) == 1200
        assert xu3.big.clamp_freq(1260) == 1300
        assert xu3.big.clamp_freq(100) == 800
        assert xu3.big.clamp_freq(9999) == 1600

    def test_contains_core(self, xu3):
        assert xu3.big.contains_core(4)
        assert not xu3.big.contains_core(3)
        assert xu3.little.contains_core(0)
        assert not xu3.little.contains_core(7)

    def test_bad_cluster_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(
                name="medium",
                core_type=cortex_a7(),
                n_cores=4,
                first_core_id=0,
            )


class TestPlatformSpec:
    def test_xu3_shape(self, xu3):
        assert xu3.n_cores == 8
        assert xu3.all_core_ids == tuple(range(8))
        assert xu3.big.max_freq_mhz == 1600
        assert xu3.little.max_freq_mhz == 1300

    def test_cluster_lookup(self, xu3):
        assert xu3.cluster(BIG) is xu3.big
        assert xu3.cluster(LITTLE) is xu3.little
        with pytest.raises(PlatformError):
            xu3.cluster("gpu")

    def test_cluster_of_core(self, xu3):
        assert xu3.cluster_of(0).name == LITTLE
        assert xu3.cluster_of(7).name == BIG
        with pytest.raises(PlatformError):
            xu3.cluster_of(8)

    def test_overlapping_core_ids_rejected(self):
        little = ClusterSpec(
            name=LITTLE, core_type=cortex_a7(), n_cores=4, first_core_id=0
        )
        big = ClusterSpec(
            name=BIG, core_type=cortex_a15(), n_cores=4, first_core_id=2
        )
        with pytest.raises(ConfigurationError):
            PlatformSpec(name="bad", big=big, little=little)

    def test_state_space_size_matches_iteration(self, small_spec):
        states = list(small_spec.iter_states())
        assert len(states) == small_spec.state_space_size()
        assert len(states) == len(set(states))

    def test_state_space_excludes_zero_core_state(self, small_spec):
        for c_big, c_little, _, _ in small_spec.iter_states():
            assert c_big + c_little >= 1

    def test_xu3_state_space_size(self, xu3):
        # (5*5 - 1) core-count combos × 9 big freqs × 6 little freqs.
        assert xu3.state_space_size() == 24 * 9 * 6

    def test_frequency_tables_helper(self, xu3):
        tables = frequency_tables(xu3)
        assert tables[BIG][0] == 800 and tables[BIG][-1] == 1600
        assert tables[LITTLE][-1] == 1300

    def test_small_platform_is_smaller(self, small_spec):
        assert small_spec.n_cores == 4
        assert small_spec.state_space_size() < odroid_xu3().state_space_size()
