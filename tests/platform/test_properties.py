"""Property-based tests for the platform model (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.cluster import BIG, LITTLE
from repro.platform.core_types import cortex_a7, cortex_a15
from repro.platform.machine import Machine
from repro.platform.power import CoreActivity, PowerModel
from repro.platform.spec import odroid_xu3

_SPEC = odroid_xu3()
_BIG_FREQS = st.sampled_from(_SPEC.big.frequencies_mhz)
_LITTLE_FREQS = st.sampled_from(_SPEC.little.frequencies_mhz)
_UTIL = st.floats(min_value=0.0, max_value=1.0)
_MI = st.floats(min_value=0.0, max_value=0.95)


@given(freq=_BIG_FREQS, mi=_MI)
def test_speed_interpolates_between_compute_bound_and_base(freq, mi):
    # The memory-bound time fraction does not scale with frequency, so
    # speed(f, mi) always lies between the compute-bound speed at f and
    # the speed at the baseline frequency.
    big = cortex_a15()
    speed = big.compute_speed(freq, mi)
    bounds = sorted((big.compute_speed(freq, 0.0), big.speed_at_f0))
    assert bounds[0] - 1e-12 <= speed <= bounds[1] + 1e-12


@given(freq=_BIG_FREQS, mi=_MI)
def test_big_faster_than_little_at_equal_conditions(freq, mi):
    if freq not in cortex_a7().frequencies_mhz:
        return
    assert cortex_a15().compute_speed(freq, mi) > cortex_a7().compute_speed(
        freq, mi
    )


@given(
    f_big=_BIG_FREQS,
    f_little=_LITTLE_FREQS,
    utils=st.lists(_UTIL, min_size=8, max_size=8),
)
@settings(max_examples=50)
def test_platform_power_positive_and_additive(f_big, f_little, utils):
    machine = Machine(_SPEC)
    machine.set_freq_mhz(BIG, f_big)
    machine.set_freq_mhz(LITTLE, f_little)
    activities = {
        core: CoreActivity(utilization=util)
        for core, util in enumerate(utils)
    }
    watts = PowerModel(_SPEC).platform_power(machine, activities)
    assert watts["total"] > 0
    assert watts["total"] == watts[BIG] + watts[LITTLE] + watts["board"]


@given(f_big=_BIG_FREQS, util_a=_UTIL, util_b=_UTIL)
@settings(max_examples=50)
def test_power_monotonic_in_any_core_utilization(f_big, util_a, util_b):
    lo, hi = sorted((util_a, util_b))
    machine = Machine(_SPEC)
    machine.set_freq_mhz(BIG, f_big)
    model = PowerModel(_SPEC)
    p_lo = model.platform_power(machine, {4: CoreActivity(utilization=lo)})
    p_hi = model.platform_power(machine, {4: CoreActivity(utilization=hi)})
    assert p_hi[BIG] >= p_lo[BIG] - 1e-12
