"""Tests for the baseline version and the static-optimal sweep."""

import pytest

from repro.baselines.baseline import BaselineController
from repro.baselines.static_optimal import (
    StaticOptimalController,
    evaluate_all_states,
    find_static_optimal,
    find_static_optimal_measured,
    oracle_power,
    oracle_rate,
)
from repro.core.state import SystemState
from repro.heartbeats.targets import PerformanceTarget
from repro.platform.cluster import BIG, LITTLE
from repro.sim.engine import Simulation
from repro.sim.process import SimApp
from repro.workloads.parsec import make_benchmark


def _target(max_rate=2.5, fraction=0.5):
    return PerformanceTarget.fraction_of(max_rate, fraction)


class TestBaselineController:
    def test_sets_max_frequency_and_unpins(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(
            SimApp("swaptions", make_benchmark("SW", n_units=5), _target())
        )
        app.set_cpuset(frozenset({0}))
        app.threads[0].set_affinity(frozenset({0}))
        sim.add_controller(BaselineController())
        sim.step()
        assert sim.machine.freq_mhz(BIG) == 1600
        assert sim.machine.freq_mhz(LITTLE) == 1300
        assert app.cpuset is None
        assert all(t.affinity is None for t in app.threads)


class TestOracle:
    def test_rate_uses_big_cluster_when_present(self, xu3):
        model = make_benchmark("SW", n_units=10)
        mixed = SystemState(2, 4, 1600, 1300)
        big_only = SystemState(2, 0, 1600, 800)
        # GTS puts every hungry thread on big: little cores add nothing.
        assert oracle_rate(xu3, model, mixed) == pytest.approx(
            oracle_rate(xu3, model, big_only)
        )

    def test_rate_scales_with_cores(self, xu3):
        model = make_benchmark("SW", n_units=10)
        r2 = oracle_rate(xu3, model, SystemState(2, 0, 1600, 800))
        r4 = oracle_rate(xu3, model, SystemState(4, 0, 1600, 800))
        assert r4 == pytest.approx(2 * r2)

    def test_little_only_uses_little(self, xu3):
        model = make_benchmark("SW", n_units=10)
        rate = oracle_rate(xu3, model, SystemState(0, 4, 800, 1300))
        assert rate > 0

    def test_oracle_rate_matches_simulation_for_dp(self, xu3):
        """The analytic GTS model predicts the engine within ~5 %."""
        state = SystemState(0, 4, 800, 1100)
        model = make_benchmark("SW", n_units=40)
        predicted = oracle_rate(xu3, model, state)
        sim = Simulation(xu3)
        app = sim.add_app(SimApp("sw", model, _target()))
        sim.add_controller(StaticOptimalController("sw", state))
        sim.run(until_s=300)
        assert app.log.overall_rate() == pytest.approx(predicted, rel=0.05)

    def test_oracle_power_matches_simulation_for_dp(self, xu3):
        state = SystemState(0, 4, 800, 1100)
        model = make_benchmark("SW", n_units=40)
        predicted = oracle_power(xu3, model, state)
        sim = Simulation(xu3)
        app = sim.add_app(SimApp("sw", model, _target()))
        sim.add_controller(StaticOptimalController("sw", state))
        sim.run(until_s=300)
        assert sim.sensor.average_power_w() == pytest.approx(predicted, rel=0.1)

    def test_pipeline_oracle_bounded_by_aggregate(self, xu3):
        model = make_benchmark("ferret", n_units=10)
        state = SystemState(4, 0, 1600, 800)
        rate = oracle_rate(xu3, model, state)
        speed = model.thread_speed(BIG, xu3.big.core_type, 1600)
        total_cost = sum(s.cost_per_item for s in model.stages)
        assert 0 < rate <= 4 * speed / total_cost + 1e-9

    def test_evaluate_all_states_covers_space(self, xu3):
        model = make_benchmark("SW", n_units=10)
        evaluations = evaluate_all_states(xu3, model, _target())
        assert len(evaluations) == xu3.state_space_size()


class TestFindStaticOptimal:
    def test_feasible_state_chosen_when_possible(self, xu3):
        model = make_benchmark("SW", n_units=10)
        target = _target(2.5, 0.5)
        best = find_static_optimal(xu3, model, target)
        assert best.rate >= target.min_rate

    def test_unreachable_target_falls_back_to_fastest(self, xu3):
        model = make_benchmark("SW", n_units=10)
        target = PerformanceTarget(100.0, 110.0, 120.0)
        best = find_static_optimal(xu3, model, target)
        all_rates = [
            e.rate for e in evaluate_all_states(xu3, model, target)
        ]
        assert best.rate == pytest.approx(max(all_rates))

    def test_so_beats_max_state_on_perf_per_watt(self, xu3):
        model = make_benchmark("SW", n_units=10)
        target = _target(2.5, 0.5)
        best = find_static_optimal(xu3, model, target)
        max_eval = [
            e
            for e in evaluate_all_states(xu3, model, target)
            if e.state == SystemState(4, 4, 1600, 1300)
        ][0]
        assert best.perf_per_power > max_eval.perf_per_power

    def test_measured_sweep_returns_valid_state(self, xu3):
        target = _target(2.5, 0.5)
        state = find_static_optimal_measured(
            xu3,
            lambda: make_benchmark("SW", n_units=30),
            target,
            top_k=3,
            probe_units=15,
        )
        state.validate(xu3)


class TestStaticOptimalController:
    def test_applies_state_and_cpuset(self, xu3):
        sim = Simulation(xu3)
        app = sim.add_app(
            SimApp("sw", make_benchmark("SW", n_units=5), _target())
        )
        controller = StaticOptimalController("sw", SystemState(2, 1, 1000, 900))
        sim.add_controller(controller)
        sim.step()
        assert sim.machine.freq_mhz(BIG) == 1000
        assert sim.machine.freq_mhz(LITTLE) == 900
        assert app.cpuset == frozenset({4, 5, 0})
        assert controller.current_allocation("sw") == (2, 1)
        assert controller.current_allocation("other") is None
