"""Properties of the pipeline fixed-point oracle (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.static_optimal import _pipeline_rate, oracle_rate
from repro.core.state import SystemState
from repro.platform.spec import odroid_xu3
from repro.workloads.base import WorkloadTraits
from repro.workloads.pipeline import PipelineWorkload, StageSpec

_SPEC = odroid_xu3()


def _pipeline(stage_shape):
    stages = tuple(
        StageSpec(f"s{i}", n, cost) for i, (n, cost) in enumerate(stage_shape)
    )
    return PipelineWorkload(
        WorkloadTraits(name="p", big_little_ratio=1.5), stages, n_items=10
    )


_STAGE = st.tuples(
    st.integers(min_value=1, max_value=8),  # threads
    st.floats(min_value=0.1, max_value=3.0),  # cost
)
_SHAPE = st.lists(_STAGE, min_size=2, max_size=6)
_CORES = st.integers(min_value=1, max_value=8)
_SPEED = st.floats(min_value=0.3, max_value=4.0)


@given(shape=_SHAPE, cores=_CORES, speed=_SPEED)
@settings(max_examples=60)
def test_rate_bounded_by_aggregate_and_stage_caps(shape, cores, speed):
    model = _pipeline(shape)
    rate = _pipeline_rate(model, cores, speed)
    total_cost = sum(s.cost_per_item for s in model.stages)
    aggregate_cap = cores * speed / total_cost
    per_stage_cap = min(
        s.n_threads * speed / s.cost_per_item for s in model.stages
    )
    assert 0 < rate <= aggregate_cap + 1e-9
    assert rate <= per_stage_cap + 1e-9


@given(shape=_SHAPE, speed=_SPEED)
@settings(max_examples=40)
def test_rate_monotone_in_cores(shape, speed):
    model = _pipeline(shape)
    rates = [_pipeline_rate(model, cores, speed) for cores in (1, 2, 4, 8)]
    for before, after in zip(rates, rates[1:]):
        assert after >= before - 1e-9


@given(shape=_SHAPE, cores=_CORES)
@settings(max_examples=40)
def test_rate_linear_in_speed(shape, cores):
    model = _pipeline(shape)
    slow = _pipeline_rate(model, cores, 1.0)
    fast = _pipeline_rate(model, cores, 2.0)
    assert fast == pytest.approx(2 * slow, rel=1e-6)


class TestOracleRateDispatch:
    def test_pipeline_state_uses_fixed_point(self):
        from repro.workloads.parsec import make_benchmark

        model = make_benchmark("ferret", n_units=10)
        state = SystemState(4, 0, 1600, 800)
        rate = oracle_rate(_SPEC, model, state)
        speed = model.thread_speed("big", _SPEC.big.core_type, 1600)
        assert rate == pytest.approx(_pipeline_rate(model, 4, speed))
