"""Regression tests for the timed-window rate (partial-window bias).

The bug these pin down: dividing a timed window's beat count by the
*nominal* span instead of the window's *elapsed* span understates the
rate whenever the window is cut short — at the start of a stream, or
when a run terminates mid-window.  A steady 10 beats/s stream observed
0.3 s into the run must read as 10 beats/s, not 3.
"""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.monitor import HeartbeatMonitor
from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.targets import PerformanceTarget


def _monitor(times):
    log = HeartbeatLog("app")
    for t in times:
        log.emit(t)
    return HeartbeatMonitor(log, PerformanceTarget.fraction_of(10.0, 0.5))


class TestCountBetween:
    def test_half_open_interval(self):
        log = HeartbeatLog("app")
        for t in (0.1, 0.2, 0.3, 0.4):
            log.emit(t)
        # (start, end]: excludes the start point, includes the end.
        assert log.count_between(0.1, 0.3) == 2
        assert log.count_between(0.0, 0.4) == 4
        assert log.count_between(0.4, 1.0) == 0

    def test_empty_log(self):
        assert HeartbeatLog("app").count_between(0.0, 10.0) == 0


class TestTimedRate:
    def test_full_window_steady_stream(self):
        # 10 beats/s for 2 s, queried over the last full second.
        monitor = _monitor([i * 0.1 for i in range(1, 21)])
        assert monitor.timed_rate(2.0, 1.0) == pytest.approx(10.0)

    def test_partial_window_not_understated(self):
        """The regression: early in the run the window is short, and the
        full-span divisor would report 3 beats/s instead of 10."""
        monitor = _monitor([0.1, 0.2, 0.3])
        rate = monitor.timed_rate(0.3, 1.0)
        assert rate == pytest.approx(10.0)
        assert rate != pytest.approx(3.0)

    def test_start_offset_respected(self):
        # Stream starts at t=5; a 1 s window queried at t=5.2 spans
        # only 0.2 s of real stream.
        monitor = _monitor([5.1, 5.2])
        assert monitor.timed_rate(
            5.2, 1.0, start_s=5.0
        ) == pytest.approx(10.0)

    def test_no_elapsed_time_is_none(self):
        monitor = _monitor([0.1])
        assert monitor.timed_rate(0.0, 1.0) is None
        assert monitor.timed_rate(5.0, 1.0, start_s=5.0) is None

    def test_idle_window_reads_zero(self):
        monitor = _monitor([0.1, 0.2])
        assert monitor.timed_rate(10.0, 1.0) == 0.0

    def test_bad_span_rejected(self):
        monitor = _monitor([0.1])
        with pytest.raises(ConfigurationError):
            monitor.timed_rate(1.0, 0.0)


class TestTimedRateSeries:
    def test_tumbling_windows_tile_the_run(self):
        monitor = _monitor([i * 0.1 for i in range(1, 21)])  # 2 s @ 10/s
        series = monitor.timed_rate_series(0.5, 2.0)
        assert [end for end, _ in series] == pytest.approx(
            [0.5, 1.0, 1.5, 2.0]
        )
        assert [rate for _, rate in series] == pytest.approx([10.0] * 4)

    def test_final_partial_window_scaled_by_elapsed_span(self):
        """Run ends 0.2 s into the last 1 s window with 2 beats inside:
        the rate is 2/0.2 = 10, not 2/1.0 = 2."""
        monitor = _monitor([0.5, 1.0, 1.1, 1.2])
        series = monitor.timed_rate_series(1.0, 1.2)
        assert series[-1][0] == pytest.approx(1.2)
        assert series[-1][1] == pytest.approx(10.0)
        assert series[-1][1] != pytest.approx(2.0)

    def test_empty_range(self):
        monitor = _monitor([0.1])
        assert monitor.timed_rate_series(1.0, 0.0) == []

    def test_bad_span_rejected(self):
        monitor = _monitor([0.1])
        with pytest.raises(ConfigurationError):
            monitor.timed_rate_series(-1.0, 2.0)
