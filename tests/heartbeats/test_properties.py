"""Property tests for heartbeat rates and targets (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.targets import PerformanceTarget, Satisfaction

_INTERVALS = st.lists(
    st.floats(min_value=0.01, max_value=5.0), min_size=2, max_size=40
)


@given(intervals=_INTERVALS)
def test_window_rate_bounded_by_extreme_intervals(intervals):
    log = HeartbeatLog("p")
    t = 0.0
    log.emit(t)
    for gap in intervals:
        t += gap
        log.emit(t)
    window = len(intervals)
    rate = log.window_rate(window)
    assert rate is not None
    # The windowed rate is the harmonic mean of the interval rates, so it
    # lies between the slowest and fastest instantaneous rates.
    assert 1.0 / max(intervals) - 1e-9 <= rate <= 1.0 / min(intervals) + 1e-9


@given(intervals=_INTERVALS)
def test_uniform_intervals_give_exact_rate(intervals):
    gap = intervals[0]
    log = HeartbeatLog("p")
    for i in range(10):
        log.emit(i * gap)
    assert log.window_rate(5) == pytest.approx(1.0 / gap)
    assert log.overall_rate() == pytest.approx(1.0 / gap)


@given(
    max_rate=st.floats(min_value=0.1, max_value=100.0),
    fraction=st.floats(min_value=0.1, max_value=1.0),
    tolerance=st.floats(min_value=0.0, max_value=0.09),
    rate=st.floats(min_value=0.0, max_value=200.0),
)
@settings(max_examples=100)
def test_target_classification_is_consistent(max_rate, fraction, tolerance, rate):
    if tolerance >= fraction:
        return
    target = PerformanceTarget.fraction_of(max_rate, fraction, tolerance)
    satisfaction = target.classify(rate)
    norm = target.normalized_performance(rate)
    assert 0.0 <= norm <= 1.0
    if satisfaction is Satisfaction.OVERPERF:
        assert norm == 1.0
        assert rate > target.max_rate
    if satisfaction is Satisfaction.UNDERPERF:
        assert rate < target.min_rate
    # The adaptation trigger fires outside the window and only there.
    in_window = target.min_rate <= rate <= target.max_rate
    if in_window:
        assert satisfaction is Satisfaction.ACHIEVE
        assert not target.out_of_window(rate)
