"""HeartbeatRegistry lifecycle: registration order, unregister, re-use.

The supervision layer made ``unregister`` a hot path (evictions detach
apps mid-run), so its interactions with iteration order and re-
registration get explicit coverage.
"""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.registry import HeartbeatRegistry
from repro.heartbeats.targets import PerformanceTarget


@pytest.fixture
def target():
    return PerformanceTarget(1.0, 1.25, 1.5)


class TestRegistryLifecycle:
    def test_registration_order_is_iteration_order(self, target):
        registry = HeartbeatRegistry()
        for name in ("c", "a", "b"):
            registry.register(name, target)
        assert registry.app_names == ("c", "a", "b")
        assert [name for name, _ in registry] == ["c", "a", "b"]

    def test_duplicate_registration_rejected(self, target):
        registry = HeartbeatRegistry()
        registry.register("a", target)
        with pytest.raises(ConfigurationError):
            registry.register("a", target)

    def test_unregister_removes_everything(self, target):
        registry = HeartbeatRegistry()
        registry.register("a", target)
        registry.register("b", target)
        registry.unregister("a")
        assert "a" not in registry
        assert registry.app_names == ("b",)
        assert len(registry) == 1
        with pytest.raises(ConfigurationError):
            registry.log("a")
        with pytest.raises(ConfigurationError):
            registry.monitor("a")

    def test_unregister_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            HeartbeatRegistry().unregister("ghost")

    def test_reregistration_after_unregister_starts_fresh(self, target):
        registry = HeartbeatRegistry()
        log = registry.register("a", target)
        log.emit(1.0)
        registry.unregister("a")
        fresh = registry.register("a", target)
        assert fresh is not log
        assert len(fresh) == 0
        # Re-registration goes to the back of the iteration order.
        registry.register("b", target)
        registry.unregister("a")
        registry.register("a", target)
        assert registry.app_names == ("b", "a")

    def test_current_rates_skips_nothing(self, target):
        registry = HeartbeatRegistry()
        registry.register("a", target)
        registry.register("b", target)
        rates = registry.current_rates()
        assert set(rates) == {"a", "b"}
        assert all(rate is None for rate in rates.values())
