"""Unit tests for heartbeat records and logs."""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.record import HeartbeatLog


def _emit_at(log, times):
    for t in times:
        log.emit(t)


class TestEmission:
    def test_indices_count_from_zero(self):
        log = HeartbeatLog("app")
        beats = [log.emit(t) for t in (0.1, 0.2, 0.3)]
        assert [b.index for b in beats] == [0, 1, 2]

    def test_time_must_not_go_backwards(self):
        log = HeartbeatLog("app")
        log.emit(1.0)
        with pytest.raises(ConfigurationError):
            log.emit(0.5)

    def test_simultaneous_beats_allowed(self):
        # Several work units can finish within one tick.
        log = HeartbeatLog("app")
        log.emit(1.0)
        log.emit(1.0)
        assert len(log) == 2

    def test_last_and_len(self):
        log = HeartbeatLog("app")
        assert log.last is None
        log.emit(0.5, tag="warmup")
        assert log.last.index == 0
        assert log.last.tag == "warmup"
        assert len(log) == 1

    def test_beats_view_is_immutable_tuple(self):
        log = HeartbeatLog("app")
        log.emit(0.1)
        assert isinstance(log.beats, tuple)


class TestRates:
    def test_window_rate_needs_window_plus_one_beats(self):
        log = HeartbeatLog("app")
        _emit_at(log, [0.0, 1.0, 2.0])
        assert log.window_rate(3) is None
        assert log.window_rate(2) == pytest.approx(1.0)

    def test_window_rate_uses_trailing_window(self):
        log = HeartbeatLog("app")
        _emit_at(log, [0.0, 10.0, 10.5, 11.0])  # slow start, fast tail
        assert log.window_rate(2) == pytest.approx(2.0)

    def test_window_rate_zero_span_is_none(self):
        log = HeartbeatLog("app")
        _emit_at(log, [1.0, 1.0])
        assert log.window_rate(1) is None

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HeartbeatLog("app").window_rate(0)

    def test_overall_rate(self):
        log = HeartbeatLog("app")
        _emit_at(log, [0.0, 1.0, 2.0, 3.0, 4.0])
        assert log.overall_rate() == pytest.approx(1.0)

    def test_overall_rate_too_short_is_none(self):
        log = HeartbeatLog("app")
        assert log.overall_rate() is None
        log.emit(1.0)
        assert log.overall_rate() is None

    def test_rate_series_indices_and_values(self):
        log = HeartbeatLog("app")
        _emit_at(log, [0.0, 0.5, 1.0, 1.5])
        series = log.rate_series(2)
        assert [i for i, _ in series] == [2, 3]
        for _, rate in series:
            assert rate == pytest.approx(2.0)
