"""DeadlineTarget: a latency SLO wearing the rate-window interface."""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.targets import DeadlineTarget, Satisfaction


@pytest.fixture
def target():
    # deadline 1 s, slack 0.4 -> comfort point 0.6 s.
    return DeadlineTarget(deadline_s=1.0, slack=0.4, tolerance=0.15)


class TestDerivedWindow:
    def test_permissive_before_first_update(self, target):
        # Any *observed* rate is ACHIEVE (literal zero never reaches
        # classify — the Analyzer screens out rate <= 0 upstream).
        for rate in (0.001, 5.0, 1e9):
            assert target.classify(rate) is Satisfaction.ACHIEVE
            assert not target.out_of_window(rate)

    def test_tail_at_comfort_point_holds(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.6)
        assert target.avg_rate == pytest.approx(10.0)
        assert target.classify(10.0) is Satisfaction.ACHIEVE

    def test_tail_near_deadline_demands_more_rate(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.95)
        # pressure = 0.95 / 0.6 -> window sits above the observed rate.
        assert target.avg_rate > 10.0
        assert target.classify(10.0) is Satisfaction.UNDERPERF

    def test_fast_tail_allows_shrinking(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.1)
        assert target.avg_rate < 10.0
        assert target.classify(10.0) is Satisfaction.OVERPERF

    def test_pressure_clamped(self, target):
        target.update(observed_rate=10.0, tail_latency_s=1e6)
        assert target.avg_rate == pytest.approx(50.0)  # 5x clamp
        target.update(observed_rate=10.0, tail_latency_s=1e-9)
        assert target.avg_rate == pytest.approx(2.0)  # 0.2x clamp

    def test_window_tolerance(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.6)
        assert target.min_rate == pytest.approx(8.5)
        assert target.max_rate == pytest.approx(11.5)
        assert target.half_width == pytest.approx(1.5)

    def test_no_data_goes_permissive_again(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.9)
        assert target.out_of_window(10.0)
        target.update(observed_rate=None, tail_latency_s=None)
        assert not target.out_of_window(10.0)
        assert target.last_tail_s is None

    def test_zero_rate_goes_permissive(self, target):
        target.update(observed_rate=0.0, tail_latency_s=0.5)
        assert target.classify(123.0) is Satisfaction.ACHIEVE


class TestPlannerInterface:
    """The methods Algorithm 2 / the vector batch planner consume."""

    def test_normalized_performance_shape(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.6)
        assert target.normalized_performance(20.0) == 1.0
        assert target.normalized_performance(5.0) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            target.normalized_performance(-1.0)

    def test_out_of_window_matches_classify(self, target):
        target.update(observed_rate=10.0, tail_latency_s=0.6)
        for rate in (5.0, 8.5, 10.0, 11.5, 20.0):
            assert target.out_of_window(rate) == (
                target.classify(rate) is not Satisfaction.ACHIEVE
            )

    def test_comfort_point(self, target):
        assert target.comfort_s == pytest.approx(0.6)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": 1.0, "percentile": 0.0},
            {"deadline_s": 1.0, "percentile": 101.0},
            {"deadline_s": 1.0, "slack": 0.0},
            {"deadline_s": 1.0, "slack": 1.0},
            {"deadline_s": 1.0, "tolerance": 0.0},
            {"deadline_s": 1.0, "tolerance": 1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeadlineTarget(**kwargs)
