"""Unit tests for performance targets, monitors and the registry."""

import pytest

from repro.errors import ConfigurationError
from repro.heartbeats.monitor import HeartbeatMonitor
from repro.heartbeats.record import HeartbeatLog
from repro.heartbeats.registry import HeartbeatRegistry
from repro.heartbeats.targets import PerformanceTarget, Satisfaction


@pytest.fixture
def target():
    return PerformanceTarget.fraction_of(10.0, 0.5)  # window 4.5..5.5


class TestPerformanceTarget:
    def test_fraction_of_builds_paper_window(self, target):
        assert target.min_rate == pytest.approx(4.5)
        assert target.avg_rate == pytest.approx(5.0)
        assert target.max_rate == pytest.approx(5.5)

    def test_high_target(self):
        high = PerformanceTarget.fraction_of(10.0, 0.75)
        assert high.avg_rate == pytest.approx(7.5)

    def test_classify(self, target):
        assert target.classify(4.0) is Satisfaction.UNDERPERF
        assert target.classify(5.0) is Satisfaction.ACHIEVE
        assert target.classify(4.5) is Satisfaction.ACHIEVE
        assert target.classify(5.5) is Satisfaction.ACHIEVE
        assert target.classify(6.0) is Satisfaction.OVERPERF

    def test_out_of_window_is_algorithm1_line7(self, target):
        assert target.out_of_window(4.0)
        assert target.out_of_window(6.0)
        assert not target.out_of_window(5.2)

    def test_normalized_performance_caps_overperformance(self, target):
        assert target.normalized_performance(10.0) == 1.0
        assert target.normalized_performance(2.5) == pytest.approx(0.5)
        assert target.normalized_performance(0.0) == 0.0

    def test_half_width(self, target):
        assert target.half_width == pytest.approx(0.5)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            PerformanceTarget(2.0, 1.0, 3.0)
        with pytest.raises(ConfigurationError):
            PerformanceTarget.fraction_of(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            PerformanceTarget.fraction_of(10.0, 0.5, tolerance=0.6)


class TestHeartbeatMonitor:
    def _monitor(self, target, times, window=2):
        log = HeartbeatLog("app")
        for t in times:
            log.emit(t)
        return HeartbeatMonitor(log, target, rate_window=window)

    def test_current_rate_none_until_window_fills(self, target):
        monitor = self._monitor(target, [0.0, 0.1], window=2)
        assert monitor.current_rate() is None

    def test_observe(self, target):
        monitor = self._monitor(target, [0.0, 0.2, 0.4])
        obs = monitor.observe()
        assert obs.index == 2
        assert obs.rate == pytest.approx(5.0)
        assert obs.satisfaction is Satisfaction.ACHIEVE

    def test_needs_adaptation(self, target):
        fast = self._monitor(target, [0.0, 0.1, 0.2])  # 10 HPS
        assert fast.needs_adaptation()
        ok = self._monitor(target, [0.0, 0.2, 0.4])  # 5 HPS
        assert not ok.needs_adaptation()

    def test_mean_normalized_performance(self, target):
        # 2.5 HPS throughout: normalized perf 0.5 at every window.
        monitor = self._monitor(target, [0.0, 0.4, 0.8, 1.2])
        assert monitor.mean_normalized_performance() == pytest.approx(0.5)

    def test_mean_normalized_perf_too_few_beats_raises(self, target):
        monitor = self._monitor(target, [0.0])
        with pytest.raises(ConfigurationError):
            monitor.mean_normalized_performance()

    def test_satisfaction_series(self, target):
        monitor = self._monitor(target, [0.0, 0.1, 0.2])
        series = monitor.satisfaction_series()
        assert series[-1][1] is Satisfaction.OVERPERF


class TestRegistry:
    def test_register_and_lookup(self, target):
        registry = HeartbeatRegistry()
        log = registry.register("a", target)
        assert registry.log("a") is log
        assert registry.target("a") is target
        assert "a" in registry and len(registry) == 1

    def test_registration_order_is_iteration_order(self, target):
        registry = HeartbeatRegistry()
        for name in ("c", "a", "b"):
            registry.register(name, target)
        assert registry.app_names == ("c", "a", "b")
        assert [n for n, _ in registry] == ["c", "a", "b"]

    def test_duplicate_registration_rejected(self, target):
        registry = HeartbeatRegistry()
        registry.register("a", target)
        with pytest.raises(ConfigurationError):
            registry.register("a", target)

    def test_unregister(self, target):
        registry = HeartbeatRegistry()
        registry.register("a", target)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(ConfigurationError):
            registry.log("a")

    def test_current_rates(self, target):
        registry = HeartbeatRegistry()
        log = registry.register("a", target, rate_window=1)
        registry.register("b", target)
        log.emit(0.0)
        log.emit(0.5)
        rates = registry.current_rates()
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] is None
